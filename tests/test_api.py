"""Tests for repro.api — the stable public facade.

The facade's promises: every name in ``__all__`` resolves, configs
round-trip through dicts (and therefore JSON), results round-trip
through save/load, and ``run_grid`` is ``run_experiment`` with fan-out —
bit-identical either way.
"""

import dataclasses
import io
import json

import pytest

import repro
import repro.api as api
from repro.api import (
    ExperimentConfig,
    FailureSpec,
    FaultEventSpec,
    FaultScheduleSpec,
    bench_topology,
    load_result,
    run_experiment,
    run_grid,
    save_result,
)


def _small_config(**overrides):
    defaults = dict(
        topology=bench_topology(),
        lb="conga",
        workload="web-search",
        load=0.5,
        n_flows=20,
        seed=3,
        size_scale=0.05,
        time_scale=0.05,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestSurface:
    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_all_is_the_single_source_of_truth(self):
        """``__all__`` and the module's public namespace agree exactly:
        no duplicate entries, no public name missing from ``__all__``,
        nothing exported that doesn't exist.  Adding a facade import
        without listing it (or vice versa) fails here."""
        import inspect

        typing_noise = {
            "Any", "Dict", "IO", "List", "Optional", "Sequence", "Union",
            "annotations",
        }
        public = {
            name
            for name, value in vars(api).items()
            if not name.startswith("_")
            and not inspect.ismodule(value)
            and name not in typing_noise
        }
        assert len(api.__all__) == len(set(api.__all__))
        assert public == set(api.__all__)

    def test_shard_and_spec_surface_is_exported(self):
        for name in ("TopologySpec", "LeafSpineSpec", "ClosSpec",
                     "spec_from_dict", "as_topology_spec", "run_sharded"):
            assert name in api.__all__, name

    def test_package_root_reexports_facade(self):
        for name in ("run_experiment", "run_grid", "save_result",
                     "load_result", "ResultSummary", "HookSet"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_facade_objects_are_the_real_objects(self):
        from repro.experiments.runner import run_experiment as internal

        assert api.run_experiment is internal


class TestConfigRoundTrip:
    def test_plain_config(self):
        config = _small_config()
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_config_with_failure_faults_and_overrides(self):
        topology = dataclasses.replace(
            bench_topology(), link_overrides={(0, 1): 4.0, (1, 0): 4.0}
        )
        config = _small_config(
            topology=topology,
            failure=FailureSpec(kind="random_drop", spine=1, drop_rate=0.05),
            faults=FaultScheduleSpec(events=(
                FaultEventSpec(action="link_down", time_ns=5_000_000,
                               leaf=0, spine=1),
                FaultEventSpec(action="link_up", time_ns=9_000_000,
                               leaf=0, spine=1),
            )),
            lb_params={"flowlet_gap_us": 50.0},
            scheduler="wheel",
        )
        restored = ExperimentConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.topology.link_overrides == {(0, 1): 4.0, (1, 0): 4.0}

    def test_round_trip_survives_json(self):
        config = _small_config(scheduler="wheel")
        wire = json.dumps(config.to_dict(), sort_keys=True)
        assert ExperimentConfig.from_dict(json.loads(wire)) == config

    def test_from_dict_rejects_unknown_keys(self):
        data = _small_config().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ValueError, match="unknown config keys"):
            ExperimentConfig.from_dict(data)

    def test_from_dict_requires_topology(self):
        with pytest.raises(ValueError, match="topology"):
            ExperimentConfig.from_dict({"lb": "ecmp"})

    def test_round_tripped_config_runs_identically(self):
        config = _small_config()
        twin = ExperimentConfig.from_dict(config.to_dict())
        a = run_experiment(config)
        b = run_experiment(twin)
        assert a.stats.records == b.stats.records


class TestResultRoundTrip:
    def test_save_load_path(self, tmp_path):
        result = run_experiment(_small_config())
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.stats.records == result.stats.records
        assert loaded.events == result.events
        assert loaded.sim_time_ns == result.sim_time_ns
        assert loaded.config == result.config
        assert loaded.mean_fct_ms == pytest.approx(result.mean_fct_ms)

    def test_save_load_stream(self):
        result = run_experiment(_small_config())
        buffer = io.StringIO()
        save_result(result, buffer)
        buffer.seek(0)
        loaded = load_result(buffer)
        assert loaded.stats.records == result.stats.records

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 999}')
        with pytest.raises(ValueError, match="format"):
            load_result(path)


class TestRunGrid:
    def test_matches_serial_run_experiment(self):
        configs = [_small_config(lb=lb) for lb in ("ecmp", "conga")]
        serial = [run_experiment(c) for c in configs]
        grid = run_grid(configs, jobs=1, use_cache=False)
        for a, b in zip(serial, grid):
            assert a.stats.records == b.stats.records

    def test_wheel_scheduler_through_the_facade(self):
        config = _small_config(scheduler="wheel")
        heap = run_experiment(_small_config())
        wheel = run_experiment(config)
        assert heap.stats.records == wheel.stats.records
