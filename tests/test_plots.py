"""Tests for the terminal plotting helpers."""

import pytest

from repro.metrics.plots import cdf_table, series_block, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_flat(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(list(range(9)), width=9)
        assert list(line) == sorted(line)

    def test_resampled_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2, 3], width=60)) == 3

    def test_bad_width(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0, 100], width=2)
        assert line[0] != line[1]


class TestCdfTable:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_table([])

    def test_quantiles_monotone(self):
        table = cdf_table(list(range(100)))
        values = [v for _, v in table]
        assert values == sorted(values)

    def test_median_of_uniform(self):
        table = cdf_table(list(range(101)), quantiles=(0.5,))
        assert table[0][1] == pytest.approx(50, abs=2)

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            cdf_table([1.0], quantiles=(1.5,))


class TestSeriesBlock:
    def test_contains_stats(self):
        text = series_block("queue", [(0, 1.0), (1, 3.0)], unit="KB")
        assert "queue:" in text
        assert "min=1" in text
        assert "max=3" in text

    def test_empty_series(self):
        assert "(no samples)" in series_block("x", [])
