"""Unit tests for CONGA (DRE tables, aging, flowlet rerouting)."""

from repro.lb.conga import CongaLeafState
from repro.lb.factory import install_lb
from repro.transport.tcp import MSS, TcpFlow
from tests.conftest import make_fabric


class TestCongaLeafState:
    def test_update_and_read(self):
        state = CongaLeafState()
        state.update(1, 0, 5, now=1000)
        assert state.metric(1, 0, now=2000) == 5

    def test_unknown_entry_reads_zero(self):
        assert CongaLeafState().metric(1, 0, now=0) == 0

    def test_aging_resets_to_zero(self):
        state = CongaLeafState(aging_ns=10_000_000)
        state.update(1, 0, 7, now=0)
        assert state.metric(1, 0, now=5_000_000) == 7
        assert state.metric(1, 0, now=20_000_000) == 0  # aged: assumed idle

    def test_update_refreshes_age(self):
        state = CongaLeafState(aging_ns=10_000_000)
        state.update(1, 0, 7, now=0)
        state.update(1, 0, 6, now=9_000_000)
        assert state.metric(1, 0, now=15_000_000) == 6


class TestCongaAgent:
    def test_feedback_updates_leaf_table(self, fabric):
        install_lb(fabric, "conga")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        agent.on_path_feedback(flow, 1, 6)
        assert agent.leaf_state.metric(1, 1, fabric.sim.now) == 6

    def test_intra_rack_feedback_ignored(self, fabric):
        install_lb(fabric, "conga")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 1, 10 * MSS)
        agent.on_path_feedback(flow, -1, 6)
        assert not agent.leaf_state.table

    def test_new_flowlet_avoids_congested_path(self, fabric):
        install_lb(fabric, "conga")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        agent.on_path_feedback(flow, 0, 7)  # path 0 is hot
        assert agent.select_path(flow, 1500) == 1

    def test_local_dre_considered(self, fabric):
        install_lb(fabric, "conga")
        agent = fabric.hosts[0].lb
        # Saturate the local uplink of path 1 without any remote feedback.
        up = fabric.topology.leaf_up[0][1]
        from repro.net.packet import Packet, PacketKind

        for i in range(400):
            up.enqueue(Packet(9, 0, 2, i, 1500, PacketKind.DATA, path_id=1))
        fabric.sim.run()
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        assert agent.select_path(flow, 1500) == 0

    def test_stale_feedback_forgotten(self, fabric):
        """The Fig. 4 mechanism: after the aging period CONGA assumes an
        unheard-from path is idle and is willing to flip back to it."""
        install_lb(fabric, "conga", aging_ns=1_000_000)
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        agent.on_path_feedback(flow, 0, 7)
        assert agent.select_path(flow, 1500) == 1
        fabric.sim.run(until=fabric.sim.now + 2_000_000)  # let the entry age
        flow2 = TcpFlow(fabric, 0, 2, 10 * MSS)
        picks = {agent.select_path(flow2, 1500) for _ in range(20)}
        assert 0 in picks  # the hot path looks idle again

    def test_within_flowlet_no_move(self, fabric):
        install_lb(fabric, "conga", flowlet_timeout_ns=1_000_000)
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        first = agent.select_path(flow, 1500)
        flow.last_tx_time = fabric.sim.now
        agent.on_path_feedback(flow, first, 7)  # current path turns hot
        # Still inside the flowlet: no rerouting despite congestion.
        assert agent.select_path(flow, 1500) == first

    def test_flow_state_cleanup(self, fabric):
        install_lb(fabric, "conga")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        agent.select_path(flow, 1500)
        agent.on_flow_done(flow)
        assert flow.flow_id not in agent._paths


class TestCongaEndToEnd:
    def test_two_elephants_take_disjoint_paths(self):
        """CONGA's core promise: concurrent large flows between the same
        leaves spread across spines instead of colliding."""
        fabric = make_fabric()
        install_lb(fabric, "conga")
        a = TcpFlow(fabric, 0, 2, 2000 * MSS)
        b = TcpFlow(fabric, 1, 3, 2000 * MSS)
        for flow in (a, b):
            fabric.register_flow(flow)
            flow.start()
        fabric.sim.run(until=fabric.sim.now + 500_000)
        assert a.current_path != b.current_path
