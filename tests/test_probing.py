"""Unit tests for active probing and the Table 6 overhead model."""

import pytest

from repro.core.parameters import HermesParams
from repro.core.probing import HermesProber, probe_overhead_model
from repro.core.sensing import HermesLeafState
from repro.lb.factory import install_lb
from tests.conftest import make_fabric


def make_prober(fabric, leaf=0, **param_overrides):
    params = HermesParams(**param_overrides).resolve(fabric.config)
    state = HermesLeafState(fabric, leaf, params)
    prober = HermesProber(
        fabric, leaf, state, params, fabric.rng.get("probe-test")
    )
    return prober, state


class TestProber:
    def test_round_sends_probes_to_remote_leaves(self, fabric):
        prober, _ = make_prober(fabric)
        prober.start()
        fabric.sim.run(until=600_000)
        assert prober.probes_sent >= 2  # 2 spines = 2 candidate paths

    def test_replies_update_shared_state(self, fabric):
        prober, state = make_prober(fabric)
        prober.start()
        fabric.sim.run(until=2_000_000)
        assert prober.replies_received > 0
        # RTT estimates moved off the initial value for probed paths.
        probed = [
            ps for ps in state._table.values() if ps.last_update > 0
        ]
        assert probed

    def test_prev_best_tracked(self, fabric):
        prober, _ = make_prober(fabric)
        prober.start()
        fabric.sim.run(until=2_000_000)
        assert 1 in prober._prev_best  # dst leaf 1
        assert prober._prev_best[1] in (0, 1)

    def test_candidates_include_prev_best(self, fabric):
        prober, _ = make_prober(fabric)
        prober._prev_best[1] = 0
        candidates = prober._candidates(1, (0, 1))
        assert 0 in candidates
        assert len(candidates) <= 3

    def test_probing_disabled_sends_nothing(self, fabric):
        prober, _ = make_prober(fabric, probing_enabled=False)
        prober.start()
        fabric.sim.run(until=2_000_000)
        assert prober.probes_sent == 0

    def test_rounds_continue_periodically(self, fabric):
        prober, _ = make_prober(fabric)
        prober.start()
        fabric.sim.run(until=500_000)
        first_round = prober.probes_sent
        fabric.sim.run(until=5_000_000)
        assert prober.probes_sent > first_round

    def test_probes_share_rack_state_with_agents(self):
        fabric = make_fabric()
        shared = install_lb(fabric, "hermes")
        fabric.sim.run(until=5_000_000)
        state = shared["leaf_states"][0]
        agent = fabric.hosts[1].lb  # NOT the probe agent host
        assert agent.leaf_state is state
        assert any(ps.last_update > 0 for ps in state._table.values())


class TestOverheadModel:
    """Reproduces the Table 6 rows (see EXPERIMENTS.md for conventions)."""

    def test_brute_force_is_about_100x(self):
        model = probe_overhead_model()
        assert model["brute-force"]["overhead"] == pytest.approx(101.4, rel=0.02)
        assert model["brute-force"]["visibility"] == 100

    def test_po2c_is_about_3x(self):
        model = probe_overhead_model()
        assert model["power-of-two-choices"]["overhead"] == pytest.approx(
            3.04, rel=0.02
        )
        assert model["power-of-two-choices"]["visibility"] >= 3

    def test_hermes_is_about_3_percent(self):
        model = probe_overhead_model()
        assert model["hermes"]["overhead"] == pytest.approx(0.0304, rel=0.02)
        assert model["hermes"]["visibility"] >= 3

    def test_piggyback_has_no_overhead(self):
        model = probe_overhead_model(piggyback_visibility=0.009)
        assert model["piggyback"]["overhead"] == 0.0
        assert model["piggyback"]["visibility"] < 0.01

    def test_ordering_preserved_for_other_sizes(self):
        model = probe_overhead_model(n_leaves=10, n_spines=8, hosts_per_leaf=40)
        assert (
            model["brute-force"]["overhead"]
            > model["power-of-two-choices"]["overhead"]
            > model["hermes"]["overhead"]
            > model["piggyback"]["overhead"]
        )

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            probe_overhead_model(n_leaves=0)
