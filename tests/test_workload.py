"""Unit tests for workload distributions and the flow generator."""

import random

import pytest

from repro.workload.distributions import (
    DATA_MINING,
    WEB_SEARCH,
    FlowSizeDistribution,
    distribution_by_name,
)
from repro.workload.generator import FlowGenerator
from tests.conftest import small_config


class TestDistributionValidation:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", [(100, 0.0)])

    def test_cdf_must_span_zero_to_one(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", [(100, 0.1), (200, 1.0)])
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", [(100, 0.0), (200, 0.9)])

    def test_cdf_monotone(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", [(100, 0.0), (200, 0.5), (300, 0.4), (400, 1.0)])

    def test_sizes_monotone(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", [(100, 0.0), (50, 1.0)])

    def test_lookup_by_name(self):
        assert distribution_by_name("web-search") is WEB_SEARCH
        assert distribution_by_name("data-mining") is DATA_MINING
        with pytest.raises(ValueError):
            distribution_by_name("nope")


class TestSampling:
    def test_samples_within_support(self):
        rng = random.Random(0)
        for _ in range(500):
            size = WEB_SEARCH.sample(rng)
            assert 6_000 <= size <= 30_000_000

    def test_sample_mean_close_to_analytic(self):
        rng = random.Random(1)
        samples = [WEB_SEARCH.sample(rng) for _ in range(20_000)]
        empirical = sum(samples) / len(samples)
        assert empirical == pytest.approx(WEB_SEARCH.mean(), rel=0.1)

    def test_web_search_mean_plausible(self):
        # The DCTCP workload's mean is ~1.6 MB.
        assert 1_000_000 < WEB_SEARCH.mean() < 3_000_000

    def test_data_mining_more_skewed(self):
        """95% of data-mining bytes come from a tiny fraction of flows."""
        rng = random.Random(2)
        samples = sorted(DATA_MINING.sample(rng) for _ in range(20_000))
        total = sum(samples)
        top_5pct = sum(samples[int(0.95 * len(samples)):])
        assert top_5pct / total > 0.9

    def test_data_mining_mostly_tiny_flows(self):
        rng = random.Random(3)
        samples = [DATA_MINING.sample(rng) for _ in range(5_000)]
        small = sum(1 for s in samples if s <= 10_000)
        assert small / len(samples) == pytest.approx(0.8, abs=0.05)

    def test_cdf_at(self):
        assert WEB_SEARCH.cdf_at(0) == 0.0
        assert WEB_SEARCH.cdf_at(10**9) == 1.0
        assert 0.0 < WEB_SEARCH.cdf_at(100_000) < 1.0

    def test_scaled_preserves_shape(self):
        scaled = WEB_SEARCH.scaled(0.1)
        assert scaled.mean() == pytest.approx(WEB_SEARCH.mean() * 0.1, rel=0.01)

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            WEB_SEARCH.scaled(0)

    def test_points_copy(self):
        points = WEB_SEARCH.points()
        points.append((1, 2))
        assert WEB_SEARCH.points()[-1] != (1, 2)


class TestFlowGenerator:
    def _gen(self, load=0.5, inter_rack_only=True):
        return FlowGenerator(
            small_config(), WEB_SEARCH, load, random.Random(0),
            inter_rack_only=inter_rack_only,
        )

    def test_load_validated(self):
        with pytest.raises(ValueError):
            FlowGenerator(small_config(), WEB_SEARCH, 0.0, random.Random(0))

    def test_arrival_times_increase(self):
        arrivals = self._gen().arrival_list(100)
        times = [a.time_ns for a in arrivals]
        assert times == sorted(times)

    def test_pairs_inter_rack(self):
        cfg = small_config()
        for arrival in self._gen().arrival_list(200):
            assert arrival.src != arrival.dst
            assert (
                arrival.src // cfg.hosts_per_leaf
                != arrival.dst // cfg.hosts_per_leaf
            )

    def test_intra_rack_allowed_when_enabled(self):
        cfg = small_config()
        arrivals = self._gen(inter_rack_only=False).arrival_list(500)
        intra = [
            a
            for a in arrivals
            if a.src // cfg.hosts_per_leaf == a.dst // cfg.hosts_per_leaf
        ]
        assert intra  # some intra-rack pairs appear

    def test_rate_matches_load(self):
        gen = self._gen(load=0.5)
        arrivals = gen.arrival_list(5_000)
        span_s = (arrivals[-1].time_ns - arrivals[0].time_ns) / 1e9
        offered_bps = sum(a.size_bytes for a in arrivals) * 8 / span_s
        capacity = small_config().n_hosts * 10e9
        assert offered_bps / capacity == pytest.approx(0.5, rel=0.15)

    def test_higher_load_means_denser_arrivals(self):
        lo = self._gen(load=0.2).mean_interarrival_ns()
        hi = self._gen(load=0.8).mean_interarrival_ns()
        assert hi == pytest.approx(lo / 4, rel=0.01)

    def test_deterministic_with_seed(self):
        a = FlowGenerator(small_config(), WEB_SEARCH, 0.5, random.Random(7))
        b = FlowGenerator(small_config(), WEB_SEARCH, 0.5, random.Random(7))
        assert a.arrival_list(50) == b.arrival_list(50)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            self._gen().arrival_list(-1)
