"""Cross-module integration tests."""

import pytest

from repro.core.parameters import HermesParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology, simulation_topology
from repro.lb.factory import install_lb
from repro.net.fabric import Fabric
from repro.net.packet import PacketKind
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS, TcpFlow
from tests.conftest import make_fabric


class TestByteConservation:
    def test_edge_ports_carry_exactly_the_flow_bytes(self, fabric):
        install_lb(fabric, "ecmp")
        flow = DctcpFlow(fabric, 0, 2, 200 * MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=10_000_000_000)
        assert flow.finished
        up = fabric.topology.host_up[0]
        # Data wire bytes: payload + 40B header per packet; no losses, no
        # retransmits on a clean fabric.
        expected_data = flow.size_bytes + 40 * flow.n_pkts
        assert up.bytes_sent == expected_data
        # The receiver's downlink carried the same data.
        down = fabric.topology.leaf_down[2]
        assert down.bytes_sent == expected_data

    def test_ack_bytes_flow_back(self, fabric):
        install_lb(fabric, "ecmp")
        flow = DctcpFlow(fabric, 0, 2, 50 * MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=10_000_000_000)
        # One 64B ACK per data packet on the reverse edge link.
        reverse_up = fabric.topology.host_up[2]
        assert reverse_up.bytes_sent == 64 * flow.n_pkts


class TestEcnPipeline:
    def test_congestion_marks_reach_the_agent(self):
        fabric = make_fabric(hosts_per_leaf=4)
        seen = []

        class SpyHermes:
            reroutes = 0

            def select_path(self, flow, wire):
                return 0

            def on_ack(self, flow, path, ece, rtt, is_retx):
                seen.append((path, ece, rtt))

            def on_path_feedback(self, *a):
                pass

            def on_timeout(self, *a):
                pass

            def on_retransmit(self, *a):
                pass

            def on_flow_done(self, *a):
                pass

        for host in fabric.hosts[:4]:
            host.lb = SpyHermes()
        flows = [DctcpFlow(fabric, src, 4, 400 * MSS) for src in range(4)]
        for flow in flows:
            fabric.register_flow(flow)
            flow.start()
        fabric.sim.run(until=10_000_000_000)
        assert any(ece for _, ece, _ in seen)
        # RTT samples grow under congestion (queueing at spine0->leaf1).
        rtts = [rtt for _, _, rtt in seen]
        assert max(rtts) > 2 * min(rtts)


class TestHermesSharedView:
    def test_rack_mates_share_path_table(self, fabric):
        shared = install_lb(fabric, "hermes")
        a, b = fabric.hosts[0].lb, fabric.hosts[1].lb
        assert a.leaf_state is b.leaf_state
        flow = DctcpFlow(fabric, 0, 2, 10 * MSS)
        a.on_ack(flow, 1, True, 500_000, False)
        # Host b reads the same (dst_leaf=1, path=1) state.
        assert b.leaf_state.state(1, 1).f_ecn > 0

    def test_probes_fill_unvisited_paths(self):
        fabric = make_fabric(n_spines=4)
        shared = install_lb(fabric, "hermes")
        fabric.sim.run(until=10_000_000)
        state = shared["leaf_states"][0]
        probed_paths = {
            path for (dst, path), ps in state._table.items() if ps.last_update
        }
        assert len(probed_paths) >= 3  # po2c + best covers >=3 paths


class TestLargeTopology:
    def test_paper_scale_fabric_builds_and_routes(self):
        config = simulation_topology()
        fabric = Fabric(Simulator(), config, RngStreams(0))
        assert len(fabric.hosts) == 128
        route = fabric.topology.route(0, 127, 5)
        assert len(route) == 4
        assert fabric.topology.paths(0, 7) == tuple(range(8))

    def test_asymmetric_paper_fabric_has_slow_links(self):
        config = simulation_topology(asymmetric=True)
        rates = {
            config.link_rate_gbps(l, s)
            for l in range(8)
            for s in range(8)
        }
        assert rates == {2.0, 10.0}

    def test_flow_crosses_paper_fabric(self):
        config = simulation_topology()
        fabric = Fabric(Simulator(), config, RngStreams(0))
        install_lb(fabric, "hermes")
        flow = DctcpFlow(fabric, 0, 127, 100 * MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=10_000_000_000)
        assert flow.finished


class TestTimeScaling:
    def test_time_scale_reaches_flow_rto(self):
        result = run_experiment(
            ExperimentConfig(
                topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
                lb="ecmp",
                workload="web-search",
                load=0.4,
                n_flows=5,
                seed=1,
                size_scale=0.05,
                time_scale=0.1,
            )
        )
        # Indirect but sufficient: the run completed with the scaled floor.
        assert result.stats.unfinished_count == 0

    def test_time_scale_reaches_hermes_params(self):
        result = run_experiment(
            ExperimentConfig(
                topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
                lb="hermes",
                workload="web-search",
                load=0.4,
                n_flows=5,
                seed=1,
                size_scale=0.1,
                time_scale=0.1,
            )
        )
        params = result.shared["params"]
        assert params.probe_interval_ns == 500_000  # network timescale
        assert params.retx_sweep_interval_ns == 1_000_000
        assert params.size_threshold_bytes == 60_000

    def test_hermes_overrides_reach_params(self):
        result = run_experiment(
            ExperimentConfig(
                topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
                lb="hermes",
                workload="web-search",
                load=0.4,
                n_flows=5,
                seed=1,
                size_scale=0.1,
                hermes_overrides={"t_ecn": 0.77},
            )
        )
        assert result.shared["params"].t_ecn == 0.77


class TestScaledBuckets:
    def test_small_large_thresholds_scale_with_sizes(self):
        result = run_experiment(
            ExperimentConfig(
                topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
                lb="ecmp",
                workload="web-search",
                load=0.4,
                n_flows=60,
                seed=1,
                size_scale=0.1,
            )
        )
        stats = result.stats
        assert stats.small_bytes == 10_000
        assert stats.large_bytes == 1_000_000
        # Web-search has both classes; scaled buckets must see them.
        assert stats.small.count > 0
        assert stats.large.count > 0


class TestAsymmetricCompletion:
    @pytest.mark.parametrize("lb", ["letflow", "conga", "clove-ecn", "hermes"])
    def test_schemes_complete_on_degraded_fabric(self, lb):
        result = run_experiment(
            ExperimentConfig(
                topology=bench_topology(asymmetric=True),
                lb=lb,
                workload="data-mining",
                load=0.5,
                n_flows=40,
                seed=4,
                size_scale=0.1,
                time_scale=0.1,
            )
        )
        assert result.stats.unfinished_count == 0


class TestProbeTrafficIsReal:
    def test_probe_packets_consume_bandwidth(self, fabric):
        install_lb(fabric, "hermes")
        fabric.sim.run(until=5_000_000)
        # Probe agents are host 0 (leaf 0) and host 2 (leaf 1).
        probe_bytes = fabric.topology.host_up[0].bytes_sent
        assert probe_bytes > 0
        # Non-agent hosts sent nothing.
        assert fabric.topology.host_up[1].bytes_sent == 0
