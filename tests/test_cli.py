"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.lb == "hermes"
        assert args.topology == "bench"
        assert args.load == 0.6

    def test_compare_schemes(self):
        args = build_parser().parse_args(["compare", "--schemes", "a,b"])
        assert args.schemes == "a,b"


class TestCommands:
    def test_probe_model(self, capsys):
        assert main(["probe-model"]) == 0
        out = capsys.readouterr().out
        assert "brute-force" in out
        assert "hermes" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--lb", "ecmp", "--flows", "10", "--size-scale", "0.05",
            "--load", "0.4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "avg FCT" in out
        assert "ecmp" in out

    def test_compare_small(self, capsys):
        code = main([
            "compare", "--schemes", "ecmp,hermes", "--flows", "10",
            "--size-scale", "0.05", "--load", "0.4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hermes" in out

    def test_compare_empty_schemes_fails(self):
        assert main(["compare", "--schemes", ",", "--flows", "5"]) == 2

    def test_run_with_failure(self, capsys):
        code = main([
            "run", "--lb", "hermes", "--flows", "10", "--size-scale", "0.05",
            "--failure", "random_drop", "--drop-rate", "0.05",
        ])
        assert code == 0

    def test_unknown_scheme_is_a_clean_error(self, capsys):
        # Bad values exit 2 with a one-line message, not a traceback.
        assert main(["run", "--lb", "bogus", "--flows", "5"]) == 2
        err = capsys.readouterr().err
        assert "unknown load balancer 'bogus'" in err
