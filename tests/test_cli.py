"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.lb == "hermes"
        assert args.topology == "bench"
        assert args.load == 0.6

    def test_compare_schemes(self):
        args = build_parser().parse_args(["compare", "--schemes", "a,b"])
        assert args.schemes == "a,b"

    def test_lb_help_is_generated_from_registry(self):
        """The --lb/--schemes help text lists every registered scheme —
        derived from the factory, never a stale literal."""
        from repro.lb.factory import scheme_names

        parser = build_parser()
        subparsers = parser._subparsers._group_actions[0].choices
        # argparse wraps long help lines (splitting e.g. "clove-ecn"
        # across a newline), so compare whitespace-free.
        run_help = "".join(subparsers["run"].format_help().split())
        compare_help = "".join(subparsers["compare"].format_help().split())
        for scheme in scheme_names():
            assert scheme in run_help
            assert scheme in compare_help

    def test_hosts_per_leaf_overrides_rack_size(self):
        from repro.cli import _config_from_args

        args = build_parser().parse_args(
            ["run", "--lb", "ecmp", "--hosts-per-leaf", "3"]
        )
        assert _config_from_args(args, "ecmp").topology.hosts_per_leaf == 3

    def test_hosts_per_leaf_rejected_for_fixed_topologies(self, capsys):
        code = main(["run", "--lb", "ecmp", "--topology", "testbed",
                     "--hosts-per-leaf", "3", "--flows", "5"])
        assert code == 2
        assert "--hosts-per-leaf" in capsys.readouterr().err

    def test_spraying_schemes_get_reorder_mask(self):
        """Per-packet sprayers (old and new) get the receiver reordering
        mask the moment the config is built from CLI flags."""
        from repro.cli import _config_from_args
        from repro.lb.factory import SPRAYING_SCHEMES

        parser = build_parser()
        for scheme in SPRAYING_SCHEMES:
            args = parser.parse_args(["run", "--lb", scheme])
            assert _config_from_args(args, scheme).reorder_mask_us is not None
        args = parser.parse_args(["run", "--lb", "ecmp"])
        assert _config_from_args(args, "ecmp").reorder_mask_us is None


class TestCommands:
    def test_probe_model(self, capsys):
        assert main(["probe-model"]) == 0
        out = capsys.readouterr().out
        assert "brute-force" in out
        assert "hermes" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--lb", "ecmp", "--flows", "10", "--size-scale", "0.05",
            "--load", "0.4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "avg FCT" in out
        assert "ecmp" in out

    def test_compare_small(self, capsys):
        code = main([
            "compare", "--schemes", "ecmp,hermes", "--flows", "10",
            "--size-scale", "0.05", "--load", "0.4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hermes" in out

    def test_compare_empty_schemes_fails(self):
        assert main(["compare", "--schemes", ",", "--flows", "5"]) == 2

    def test_run_with_failure(self, capsys):
        code = main([
            "run", "--lb", "hermes", "--flows", "10", "--size-scale", "0.05",
            "--failure", "random_drop", "--drop-rate", "0.05",
        ])
        assert code == 0

    def test_unknown_scheme_is_a_clean_error(self, capsys):
        # Bad values exit 2 with a one-line message, not a traceback.
        assert main(["run", "--lb", "bogus", "--flows", "5"]) == 2
        err = capsys.readouterr().err
        assert "unknown load balancer 'bogus'" in err


class TestUnitParsers:
    def test_parse_bytes(self):
        import argparse

        from repro.cli import _parse_bytes

        assert _parse_bytes("1024") == 1024
        assert _parse_bytes("4k") == 4096
        assert _parse_bytes("500M") == 500 * 1024**2
        assert _parse_bytes("2gb") == 2 * 1024**3
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_bytes("lots")

    def test_parse_age(self):
        import argparse

        from repro.cli import _parse_age

        assert _parse_age("90") == 90.0
        assert _parse_age("30m") == 1800.0
        assert _parse_age("12h") == 12 * 3600.0
        assert _parse_age("7d") == 7 * 86400.0
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_age("soon")


class TestCachePruneCommand:
    def test_prune_requires_a_policy(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "prune"]) == 2
        assert "--max-bytes and/or --max-age" in capsys.readouterr().err

    def test_prune_reports_reclaimed_bytes(self, tmp_path, monkeypatch, capsys):
        import os

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        for name, mtime in (("a", 1_000.0), ("b", 2_000.0)):
            path = tmp_path / f"{name}.pkl"
            path.write_bytes(b"\0" * 100)
            os.utime(path, (mtime, mtime))
        assert main(["cache", "prune", "--max-bytes", "100"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 entries, reclaimed 100 bytes" in out
        assert "1 entries (100 bytes) remain" in out


class TestServeParsing:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.workers == 2

    def test_submit_args(self):
        args = build_parser().parse_args(
            ["submit", "--schemes", "ecmp,hermes", "--priority", "3",
             "--no-wait"]
        )
        assert args.schemes == "ecmp,hermes"
        assert args.priority == 3
        assert args.no_wait

    def test_jobs_args(self):
        args = build_parser().parse_args(["jobs", "--watch", "job-000001"])
        assert args.watch == "job-000001"
        assert args.url.startswith("http://")
