"""Tests for repro.net.spec — declarative topology specifications.

Edge cases the sharded-runner redesign exposed: a single-leaf fabric
(everything intra-rack, no spine traffic at all), asymmetric uplink
capacities, and the three-tier Clos shape that only the spec layer can
describe.  The Clos smoke test builds a fabric with *no* load-balancing
scheme installed and asserts raw reachability: hand-injected packets
arrive at intra-rack, intra-pod and inter-pod destinations.
"""

import dataclasses

import pytest

from repro.api import (
    ClosSpec,
    ExperimentConfig,
    LeafSpineSpec,
    TopologyConfig,
    TopologySpec,
    as_topology_spec,
    asymmetric_overrides,
    bench_topology,
    run_experiment,
    spec_from_dict,
)
from repro.net.fabric import Fabric
from repro.net.packet import PacketKind
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


class TestSingleLeaf:
    """One leaf, no inter-rack traffic: the degenerate fabric must still
    run (every flow is host→leaf→host) and must refuse to shard."""

    def _config(self):
        return ExperimentConfig(
            topology=TopologyConfig(n_leaves=1, n_spines=1, hosts_per_leaf=4),
            lb="ecmp",
            load=0.5,
            n_flows=20,
            seed=2,
            size_scale=0.05,
            time_scale=0.05,
        )

    def test_experiment_completes(self):
        result = run_experiment(self._config())
        assert len(result.stats.records) == 20
        assert all(r.fct_ns is not None for r in result.stats.records)
        # one leaf ⇒ every pair is intra-rack
        spec = as_topology_spec(self._config().topology)
        assert all(spec.leaf_of(r.src) == 0 and spec.leaf_of(r.dst) == 0
                   for r in result.stats.records)

    def test_shard_plan_single_group_only(self):
        spec = as_topology_spec(TopologyConfig(n_leaves=1, n_spines=1))
        assert spec.shard_plan(1) == ((0,),)
        with pytest.raises(ValueError, match=r"n_shards must be in \[1, 1\]"):
            spec.shard_plan(2)


class TestAsymmetricUplinks:
    """Uplink capacities that differ per (leaf, spine) pair — the §5.3.2
    asymmetry setup — flow through the spec layer unchanged."""

    def test_experiment_with_reduced_links_completes(self):
        overrides = asymmetric_overrides(
            n_leaves=2, n_spines=2, fraction=0.5, reduced_gbps=2.0, seed=9
        )
        assert overrides  # the draw picked at least one link
        topology = dataclasses.replace(
            bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=4),
            link_overrides=overrides,
        )
        config = ExperimentConfig(
            topology=topology, lb="hermes", load=0.5, n_flows=20,
            seed=4, size_scale=0.05, time_scale=0.05,
        )
        result = run_experiment(config)
        assert all(r.fct_ns is not None for r in result.stats.records)

    def test_overrides_survive_spec_round_trip(self):
        topology = dataclasses.replace(
            bench_topology(), link_overrides={(0, 1): 2.0, (1, 0): 2.0}
        )
        spec = as_topology_spec(topology)
        restored = spec_from_dict(spec.to_dict())
        assert restored == spec
        assert restored.config.link_overrides == {(0, 1): 2.0, (1, 0): 2.0}


def _delivery_sink(hits):
    class _Sink:
        def on_data(self, packet):
            hits.append((packet.flow_id, packet.src, packet.dst))

    return _Sink()


class TestClosSmoke:
    """Three-tier Clos: build with no scheme, verify structure and raw
    reachability for every distance class."""

    def _spec(self):
        return ClosSpec(pods=2, leaves_per_pod=2, aggs_per_pod=2,
                        n_cores=2, hosts_per_leaf=4)

    def _fabric(self, spec):
        return Fabric(Simulator(), spec, RngStreams(1))

    def test_dimensions(self):
        spec = self._spec()
        assert spec.n_leaves == 4
        assert spec.n_hosts == 16
        assert spec.leaf_of(0) == 0 and spec.leaf_of(15) == 3
        assert spec.pod_of_leaf(0) == 0 and spec.pod_of_leaf(3) == 1

    def test_path_counts_per_distance_class(self):
        spec = self._spec()
        topo = self._fabric(spec).topology
        assert topo.paths(0, 0) == (-1,)                    # same leaf
        assert len(topo.paths(0, 1)) == spec.aggs_per_pod   # intra-pod
        assert len(topo.paths(0, 2)) == spec.aggs_per_pod * spec.n_cores

    def test_routes_are_well_formed(self):
        """Every route starts at the source host's NIC and ends at the
        destination's leaf downlink, for every advertised path id."""
        spec = self._spec()
        topo = self._fabric(spec).topology
        pairs = [(0, 1), (0, 4), (0, 12)]  # intra-rack, intra-pod, inter-pod
        for src, dst in pairs:
            for path_id in topo.paths(topo.leaf_of(src), topo.leaf_of(dst)):
                route = topo.route(src, dst, path_id)
                assert route[0] is topo.host_up[src]
                assert route[-1] is topo.leaf_down[dst]

    def test_hosts_reachable_without_a_scheme(self):
        """Hand-injected packets reach intra-rack, intra-pod and
        inter-pod destinations over every path id — no LB agent, no
        transport, just ports and routing."""
        spec = self._spec()
        fabric = self._fabric(spec)
        topo = fabric.topology
        hits = []
        sent = []
        flow_id = 0
        for src, dst in [(0, 1), (0, 4), (0, 12)]:
            for path_id in topo.paths(topo.leaf_of(src), topo.leaf_of(dst)):
                fabric.flows[flow_id] = _delivery_sink(hits)
                packet = fabric.packet_pool.acquire(
                    flow_id, src, dst, 0, 1500, PacketKind.DATA,
                    path_id=path_id,
                )
                assert fabric.send(packet)
                sent.append((flow_id, src, dst))
                flow_id += 1
        fabric.sim.run(until=10_000_000)
        assert sorted(hits) == sorted(sent)

    def test_uplink_ports_cover_every_agg(self):
        spec = self._spec()
        topo = self._fabric(spec).topology
        for leaf in range(spec.n_leaves):
            uplinks = topo.uplink_ports(leaf)
            assert sorted(a for a, _ in uplinks) == list(
                range(spec.aggs_per_pod)
            )

    def test_shard_plan_groups_whole_pods(self):
        spec = self._spec()
        assert spec.shard_plan(1) == ((0, 1, 2, 3),)
        assert spec.shard_plan(2) == ((0, 1), (2, 3))
        with pytest.raises(ValueError, match="2-pod clos"):
            spec.shard_plan(3)

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ValueError, match="positive"):
            ClosSpec(pods=0)


class TestSpecSerialization:
    def test_leaf_spine_round_trip(self):
        spec = LeafSpineSpec(bench_topology())
        restored = spec_from_dict(spec.to_dict())
        assert isinstance(restored, LeafSpineSpec)
        assert restored == spec

    def test_clos_round_trip(self):
        spec = ClosSpec(pods=3, leaves_per_pod=2, aggs_per_pod=4,
                        n_cores=2, hosts_per_leaf=8, prop_delay_ns=500)
        restored = spec_from_dict(spec.to_dict())
        assert isinstance(restored, ClosSpec)
        assert restored == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology spec kind"):
            spec_from_dict({"kind": "torus"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology spec kind"):
            spec_from_dict({})


class TestCoercion:
    def test_config_wraps_into_leaf_spine_spec(self):
        config = bench_topology()
        spec = as_topology_spec(config)
        assert isinstance(spec, LeafSpineSpec)
        assert spec.config is config
        assert spec.n_hosts == config.n_hosts

    def test_spec_passes_through_unchanged(self):
        spec = ClosSpec()
        assert as_topology_spec(spec) is spec

    def test_other_types_rejected(self):
        with pytest.raises(TypeError, match="TopologySpec or TopologyConfig"):
            as_topology_spec({"n_leaves": 2})

    def test_base_class_is_abstract_surface(self):
        spec = TopologySpec()
        with pytest.raises(NotImplementedError):
            spec.shard_plan(1)
