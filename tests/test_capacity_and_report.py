"""Edge-case tests: fabric capacity accounting and report formatting."""

import pytest

from repro.experiments.report import format_table
from repro.net.topology import TopologyConfig


class TestFabricCapacity:
    def test_non_oversubscribed_uses_edge(self):
        cfg = TopologyConfig(
            n_leaves=2, n_spines=2, hosts_per_leaf=2,
            host_link_gbps=10.0, spine_link_gbps=10.0,
        )
        assert cfg.fabric_capacity_bps() == 4 * 10e9

    def test_oversubscribed_capped_by_uplinks(self):
        cfg = TopologyConfig(
            n_leaves=2, n_spines=2, hosts_per_leaf=6,
            host_link_gbps=10.0, spine_link_gbps=10.0,
        )
        # Edge 120G, uplinks 2x2x10 = 40G.
        assert cfg.fabric_capacity_bps() == 40e9

    def test_cut_links_reduce_capacity(self):
        base = TopologyConfig(
            n_leaves=2, n_spines=2, hosts_per_leaf=6,
            host_link_gbps=10.0, spine_link_gbps=10.0,
        )
        cut = TopologyConfig(
            n_leaves=2, n_spines=2, hosts_per_leaf=6,
            host_link_gbps=10.0, spine_link_gbps=10.0,
            link_overrides={(0, 1): 0.0},
        )
        assert cut.fabric_capacity_bps() == base.fabric_capacity_bps() - 10e9

    def test_degraded_links_reduce_capacity(self):
        cfg = TopologyConfig(
            n_leaves=2, n_spines=2, hosts_per_leaf=6,
            host_link_gbps=10.0, spine_link_gbps=10.0,
            link_overrides={(0, 1): 2.0},
        )
        assert cfg.fabric_capacity_bps() == 32e9

    def test_single_leaf_uses_edge(self):
        cfg = TopologyConfig(
            n_leaves=1, n_spines=2, hosts_per_leaf=4,
            host_link_gbps=10.0, spine_link_gbps=1.0,
        )
        assert cfg.fabric_capacity_bps() == 40e9


class TestReportFormatting:
    def test_large_floats_rounded(self):
        text = format_table(["v"], [[12345.678]])
        assert "12346" in text

    def test_mid_floats_two_decimals(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text

    def test_small_floats_four_decimals(self):
        text = format_table(["v"], [[0.01234]])
        assert "0.0123" in text

    def test_strings_pass_through(self):
        text = format_table(["v"], [["hello"]])
        assert "hello" in text

    def test_integers_unchanged(self):
        text = format_table(["v"], [[42]])
        assert "42" in text

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2
