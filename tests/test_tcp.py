"""Unit and behavioural tests for TCP New Reno."""

import pytest

from repro.net.packet import PacketKind
from repro.transport.tcp import MSS, TcpFlow
from tests.conftest import make_fabric


class PinnedPathAgent:
    """Minimal agent pinning every flow to one path."""

    def __init__(self, path):
        self.path = path
        self.reroutes = 0

    def select_path(self, flow, wire_bytes):
        return self.path

    def on_ack(self, *args):
        pass

    def on_path_feedback(self, *args):
        pass

    def on_timeout(self, *args):
        pass

    def on_retransmit(self, *args):
        pass

    def on_flow_done(self, *args):
        pass


def run_flow(fabric, src=0, dst=2, size=10 * MSS, **kwargs) -> TcpFlow:
    flow = TcpFlow(fabric, src, dst, size, **kwargs)
    fabric.register_flow(flow)
    flow.start()
    fabric.sim.run(until=fabric.sim.now + 5_000_000_000)
    return flow


class TestBasicTransfer:
    def test_single_packet_flow_completes(self, fabric):
        flow = run_flow(fabric, size=500)
        assert flow.finished
        assert flow.n_pkts == 1

    def test_multi_packet_flow_completes(self, fabric):
        flow = run_flow(fabric, size=100 * MSS)
        assert flow.finished
        assert flow.receiver.rcv_next == 100

    def test_intra_rack_flow_completes(self, fabric):
        flow = run_flow(fabric, src=0, dst=1, size=20 * MSS)
        assert flow.finished
        assert flow.current_path == -1

    def test_fct_positive_and_reasonable(self, fabric):
        flow = run_flow(fabric, size=10 * MSS)
        # 10 packets at 10G through 4 hops: minimum is tens of microseconds.
        assert 5_000 < flow.fct_ns < 1_000_000

    def test_zero_size_rejected(self, fabric):
        with pytest.raises(ValueError):
            TcpFlow(fabric, 0, 2, 0)

    def test_same_endpoints_rejected(self, fabric):
        with pytest.raises(ValueError):
            TcpFlow(fabric, 0, 0, 1500)

    def test_last_packet_smaller(self, fabric):
        flow = TcpFlow(fabric, 0, 2, int(2.5 * MSS))
        assert flow.n_pkts == 3
        assert flow._last_payload == int(2.5 * MSS) - 2 * MSS

    def test_no_retransmissions_on_clean_path(self, fabric):
        flow = run_flow(fabric, size=200 * MSS)
        assert flow.retx_count == 0
        assert flow.timeout_count == 0

    def test_bytes_sent_equals_size(self, fabric):
        flow = run_flow(fabric, size=50 * MSS)
        assert flow.bytes_sent == 50 * MSS


class TestCongestionWindow:
    def test_initial_window_ten(self, fabric):
        flow = TcpFlow(fabric, 0, 2, 100 * MSS)
        fabric.register_flow(flow)
        flow.start()
        # Exactly the initial window leaves before any ACK returns.
        assert flow.snd_nxt == 10

    def test_slow_start_doubles_per_rtt(self, fabric):
        flow = TcpFlow(fabric, 0, 2, 400 * MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=fabric.sim.now + 40_000)  # ~2 RTTs
        assert flow.cwnd > 20

    def test_cwnd_capped(self, fabric):
        flow = run_flow(fabric, size=500 * MSS, max_cwnd=32.0)
        assert flow.finished
        assert flow.cwnd <= 32.0


class TestLossRecovery:
    def _lossy_fabric(self, lose_seqs):
        fabric = make_fabric()
        fabric.hosts[0].lb = PinnedPathAgent(0)  # keep the flow on path 0
        port = fabric.topology.leaf_up[0][0]
        remaining = set(lose_seqs)

        def drop_once(packet, now):
            if (
                packet.kind == PacketKind.DATA
                and packet.seq in remaining
                and not packet.is_retx
            ):
                remaining.discard(packet.seq)
                return True
            return False

        port.drop_predicates.append(drop_once)
        return fabric

    def test_fast_retransmit_recovers_single_loss(self):
        fabric = self._lossy_fabric({5})
        flow = run_flow(fabric, size=50 * MSS)
        assert flow.finished
        assert flow.retx_count >= 1
        assert flow.timeout_count == 0  # recovered without RTO

    def test_ssthresh_halved_on_loss(self):
        fabric = self._lossy_fabric({5})
        flow = run_flow(fabric, size=50 * MSS)
        assert flow.ssthresh < 50

    def test_tail_loss_needs_timeout(self):
        # The last packet has no successors to generate dup ACKs.
        fabric = self._lossy_fabric({49})
        flow = run_flow(fabric, size=50 * MSS)
        assert flow.finished
        assert flow.timeout_count >= 1
        assert flow.fct_ns > 10_000_000  # paid at least one 10ms RTO

    def test_multiple_losses_recovered(self):
        fabric = self._lossy_fabric({3, 7, 11, 19})
        flow = run_flow(fabric, size=60 * MSS)
        assert flow.finished
        assert flow.receiver.rcv_next == 60

    def test_total_blackhole_never_finishes(self):
        fabric = make_fabric()
        for port in fabric.topology.spine_ports(0):
            port.drop_predicates.append(lambda p, now: True)
        for port in fabric.topology.spine_ports(1):
            port.drop_predicates.append(lambda p, now: True)
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=500_000_000)
        assert not flow.finished
        assert flow.timeout_count >= 3

    def test_blackhole_timeouts_backoff_exponentially(self):
        """Regression: ``_on_rto`` used to arm a *second* RTO event on
        top of the one ``_transmit`` arms.  The orphan fired as a
        phantom timeout whose handler armed two more — the live-event
        count doubled per generation, melting long degraded-fabric runs.
        With a single live timer and exponential backoff (10 ms floor,
        doubling), 500 ms of total blackhole fits only a handful of
        genuine timeouts."""
        fabric = make_fabric()
        for spine in (0, 1):
            for port in fabric.topology.spine_ports(spine):
                port.drop_predicates.append(lambda p, now: True)
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=500_000_000)
        assert not flow.finished
        assert 3 <= flow.timeout_count <= 8, (
            f"{flow.timeout_count} timeouts in 500 ms: backoff is not "
            f"exponential or phantom RTO events are firing"
        )

    def test_timeout_sets_hermes_flag(self):
        fabric = self._lossy_fabric({49})
        flow = run_flow(fabric, size=50 * MSS)
        assert flow.timeout_count > 0  # if_timeout was set then consumed


class TestRetxPathAttribution:
    def test_retx_blamed_on_original_path(self):
        fabric = make_fabric()
        blamed = []

        class Spy:
            reroutes = 0

            def select_path(self, flow, wire):
                return 0

            def on_ack(self, *a):
                pass

            def on_path_feedback(self, *a):
                pass

            def on_timeout(self, *a):
                pass

            def on_retransmit(self, flow, path):
                blamed.append(path)

            def on_flow_done(self, *a):
                pass

        fabric.hosts[0].lb = Spy()
        port = fabric.topology.leaf_up[0][0]
        dropped = []

        def drop_five(packet, now):
            if packet.kind == PacketKind.DATA and packet.seq == 5 and not dropped:
                dropped.append(packet.seq)
                return True
            return False

        port.drop_predicates.append(drop_five)
        flow = run_flow(fabric, size=30 * MSS)
        assert flow.finished
        assert blamed and all(p == 0 for p in blamed)


class TestReorderMasking:
    def test_mask_suppresses_spurious_fast_retransmit(self, fabric):
        # Deliver one packet out of order by bouncing it through the other
        # spine with a pause: without masking this causes dup ACKs.
        flow = TcpFlow(fabric, 0, 2, 40 * MSS, reorder_mask_ns=300_000)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=fabric.sim.now + 1_000_000_000)
        assert flow.finished
        assert flow.retx_count == 0
