"""Unit tests for the Algorithm 2 path-selection policy."""

import random

import pytest

from repro.core.parameters import HermesParams
from repro.core.rerouting import ReroutingPolicy
from repro.core.sensing import HermesLeafState


@pytest.fixture
def setup(fabric):
    params = HermesParams().resolve(fabric.config)
    state = HermesLeafState(fabric, 0, params)
    policy = ReroutingPolicy(state, params, random.Random(0))
    return fabric, params, state, policy


def converge(state, dst_leaf, path, ece, rtt_ns, n=60):
    for _ in range(n):
        state.record_ack(dst_leaf, path, ece, rtt_ns)


class TestInitialPlacement:
    def test_prefers_good_over_gray(self, setup):
        fabric, params, state, policy = setup
        converge(state, 1, 0, False, params.t_rtt_low_ns - 5_000)   # good
        converge(state, 1, 1, False, params.t_rtt_high_ns + 5_000)  # gray
        assert policy.initial_path(1, (0, 1), set()) == 0

    def test_good_ties_broken_by_least_rp(self, setup):
        fabric, params, state, policy = setup
        state.state(1, 0).rp_add(1_000_000, fabric.sim.now)
        assert policy.initial_path(1, (0, 1), set()) == 1

    def test_gray_used_when_no_good(self, setup):
        fabric, params, state, policy = setup
        mid = (params.t_rtt_low_ns + params.t_rtt_high_ns) // 2
        converge(state, 1, 0, False, mid)                            # gray
        converge(state, 1, 1, True, params.t_rtt_high_ns + 50_000)   # congested
        assert policy.initial_path(1, (0, 1), set()) == 0

    def test_random_non_failed_as_last_resort(self, setup):
        fabric, params, state, policy = setup
        converge(state, 1, 0, True, params.t_rtt_high_ns + 50_000)
        converge(state, 1, 1, True, params.t_rtt_high_ns + 50_000)
        state.mark_failed(1, 1)
        assert policy.initial_path(1, (0, 1), set()) == 0

    def test_excluded_paths_avoided(self, setup):
        fabric, params, state, policy = setup
        assert policy.initial_path(1, (0, 1), excluded={0}) == 1

    def test_everything_failed_still_returns_a_path(self, setup):
        fabric, params, state, policy = setup
        state.mark_failed(1, 0)
        state.mark_failed(1, 1)
        assert policy.initial_path(1, (0, 1), set()) in (0, 1)

    def test_all_excluded_still_returns_a_path(self, setup):
        fabric, params, state, policy = setup
        assert policy.initial_path(1, (0, 1), excluded={0, 1}) in (0, 1)


class TestCongestedReroute:
    def _make_congested(self, state, params, path=0):
        converge(state, 1, path, True, params.t_rtt_high_ns + 200_000)

    def test_moves_to_notably_better_good(self, setup):
        fabric, params, state, policy = setup
        self._make_congested(state, params, 0)
        converge(state, 1, 1, False, fabric.config.base_rtt_ns())
        assert policy.reroute_from_congested(1, (0, 1), 0, set()) == 1

    def test_stays_when_alternative_not_notably_better(self, setup):
        fabric, params, state, policy = setup
        self._make_congested(state, params, 0)
        converge(state, 1, 1, True, params.t_rtt_high_ns + 195_000)
        assert policy.reroute_from_congested(1, (0, 1), 0, set()) is None

    def test_vigorous_mode_skips_margins(self, setup):
        fabric, params, state, policy = setup
        self._make_congested(state, params, 0)
        mid = (params.t_rtt_low_ns + params.t_rtt_high_ns) // 2
        converge(state, 1, 1, False, mid)  # gray, not notably better
        assert (
            policy.reroute_from_congested(1, (0, 1), 0, set(), require_notably=False)
            == 1
        )

    def test_failed_candidate_ignored(self, setup):
        fabric, params, state, policy = setup
        self._make_congested(state, params, 0)
        converge(state, 1, 1, False, fabric.config.base_rtt_ns())
        state.mark_failed(1, 1)
        assert policy.reroute_from_congested(1, (0, 1), 0, set()) is None

    def test_excluded_candidate_ignored(self, setup):
        fabric, params, state, policy = setup
        self._make_congested(state, params, 0)
        converge(state, 1, 1, False, fabric.config.base_rtt_ns())
        assert (
            policy.reroute_from_congested(1, (0, 1), 0, excluded={1}) is None
        )

    def test_good_preferred_over_gray_candidate(self, setup):
        fabric = setup[0]
        params, state, policy = setup[1], setup[2], setup[3]
        # Three-path fabric for this case.
        from tests.conftest import make_fabric

        fabric3 = make_fabric(n_spines=3)
        params3 = HermesParams().resolve(fabric3.config)
        state3 = HermesLeafState(fabric3, 0, params3)
        policy3 = ReroutingPolicy(state3, params3, random.Random(0))
        converge(state3, 1, 0, True, params3.t_rtt_high_ns + 300_000)
        mid = (params3.t_rtt_low_ns + params3.t_rtt_high_ns) // 2
        converge(state3, 1, 1, False, mid)  # gray, notably better
        converge(state3, 1, 2, False, fabric3.config.base_rtt_ns())  # good
        assert policy3.reroute_from_congested(1, (0, 1, 2), 0, set()) == 2
