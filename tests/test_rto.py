"""Unit tests for the RTO estimator."""

from repro.sim.engine import NS_PER_MS
from repro.transport.rto import RtoEstimator


class TestRtoEstimator:
    def test_initial_rto(self):
        assert RtoEstimator().rto_ns == 10 * NS_PER_MS

    def test_first_sample_initializes_srtt(self):
        rto = RtoEstimator()
        rto.update(100_000)
        assert rto.srtt == 100_000
        assert rto.rttvar == 50_000

    def test_min_rto_floor(self):
        rto = RtoEstimator()
        rto.update(50_000)  # 50us RTT -> raw RTO far below the 10ms floor
        assert rto.rto_ns == 10 * NS_PER_MS

    def test_custom_floor(self):
        rto = RtoEstimator(init_rto_ns=1_000_000, min_rto_ns=1_000_000)
        assert rto.rto_ns == 1_000_000

    def test_smoothing_converges(self):
        rto = RtoEstimator()
        for _ in range(100):
            rto.update(200_000)
        assert abs(rto.srtt - 200_000) < 1_000

    def test_variance_widens_rto(self):
        stable = RtoEstimator(min_rto_ns=1)
        jittery = RtoEstimator(min_rto_ns=1)
        for i in range(50):
            stable.update(100_000)
            jittery.update(100_000 if i % 2 else 500_000)
        assert jittery.rto_ns > stable.rto_ns

    def test_backoff_doubles(self):
        rto = RtoEstimator()
        base = rto.rto_ns
        rto.backoff()
        assert rto.rto_ns == 2 * base
        rto.backoff()
        assert rto.rto_ns == 4 * base

    def test_backoff_capped_at_max(self):
        rto = RtoEstimator(max_rto_ns=100 * NS_PER_MS)
        for _ in range(20):
            rto.backoff()
        assert rto.rto_ns == 100 * NS_PER_MS

    def test_sample_resets_backoff(self):
        rto = RtoEstimator()
        rto.backoff()
        rto.update(100_000)
        assert rto.rto_ns == 10 * NS_PER_MS

    def test_non_positive_sample_ignored(self):
        rto = RtoEstimator()
        rto.update(0)
        rto.update(-5)
        assert rto.srtt == 0.0
