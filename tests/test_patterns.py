"""Unit tests for the synthetic traffic patterns."""

import random

import pytest

from repro.workload.patterns import incast, permutation, staggered_elephants
from tests.conftest import small_config


class TestIncast:
    def test_right_number_of_senders(self):
        arrivals = incast(small_config(), 0, 2, 10_000, random.Random(0))
        assert len(arrivals) == 2
        assert all(a.dst == 0 for a in arrivals)

    def test_senders_unique(self):
        cfg = small_config(hosts_per_leaf=8)
        arrivals = incast(cfg, 0, 8, 10_000, random.Random(0))
        assert len({a.src for a in arrivals}) == 8

    def test_inter_rack_only(self):
        cfg = small_config()
        arrivals = incast(cfg, 0, 2, 10_000, random.Random(0))
        assert all(a.src // 2 != 0 for a in arrivals)

    def test_jitter_bounds(self):
        arrivals = incast(
            small_config(), 0, 2, 10_000, random.Random(0),
            start_ns=100, jitter_ns=50,
        )
        assert all(100 <= a.time_ns < 150 for a in arrivals)

    def test_too_many_senders_rejected(self):
        with pytest.raises(ValueError):
            incast(small_config(), 0, 100, 10_000, random.Random(0))

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            incast(small_config(), 99, 1, 10_000, random.Random(0))


class TestPermutation:
    def test_every_host_sends_once(self):
        cfg = small_config(hosts_per_leaf=4)
        arrivals = permutation(cfg, 10_000, random.Random(1))
        assert sorted(a.src for a in arrivals) == list(range(cfg.n_hosts))

    def test_every_host_receives_once(self):
        cfg = small_config(hosts_per_leaf=4)
        arrivals = permutation(cfg, 10_000, random.Random(1))
        assert sorted(a.dst for a in arrivals) == list(range(cfg.n_hosts))

    def test_no_self_and_inter_rack(self):
        cfg = small_config(hosts_per_leaf=4)
        arrivals = permutation(cfg, 10_000, random.Random(1))
        for a in arrivals:
            assert a.src != a.dst
            assert a.src // 4 != a.dst // 4


class TestStaggeredElephants:
    def test_gap_spacing(self):
        arrivals = staggered_elephants(
            small_config(), 5, 10**6, 1_000, random.Random(2)
        )
        assert [a.time_ns for a in arrivals] == [0, 1000, 2000, 3000, 4000]

    def test_pairs_valid(self):
        cfg = small_config()
        arrivals = staggered_elephants(cfg, 20, 10**6, 100, random.Random(2))
        for a in arrivals:
            assert a.src != a.dst
            assert a.src // 2 != a.dst // 2
