"""Failure-injection edge cases, run under the invariant checker.

The basic failure tests (``tests/test_failures.py``) install a
malfunction before any traffic exists.  Real switches do not wait for
quiet periods: these tests cover the racy timelines — a failure landing
mid-flow, a failure catching an active probe in flight, and a
malfunction that recovers before Hermes' τ-sweep ever gets to observe
it — and assert both the behavioural outcome and that every
:mod:`repro.validate` invariant (conservation, FIFO, capacity, clock)
holds throughout.
"""

import random

from repro.lb.factory import install_lb
from repro.net.failures import BlackholeFailure, RandomDropFailure
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS
from repro.validate import install_checker, watch_leaf_states
from tests.conftest import make_fabric

MS = 1_000_000


def _install_on_all_spines(fabric, failure):
    for spine in range(fabric.config.n_spines):
        failure.install(fabric.topology, spine)


def _remove_from_all_spines(fabric, failure):
    for spine in range(fabric.config.n_spines):
        for port in fabric.topology.spine_ports(spine):
            port.drop_predicates.remove(failure)


class TestFailureMidFlow:
    def test_failure_landing_mid_flow_keeps_ledger_balanced(self):
        """A 100% drop failure installed while a transfer is in full
        swing: the flow stalls, every lost byte shows up in the drop
        ledger, and conservation still balances at the horizon."""
        fabric = make_fabric()
        checker = install_checker(fabric)
        install_lb(fabric, "ecmp")
        flow = DctcpFlow(fabric, 0, 2, 500 * MSS)
        fabric.register_flow(flow)
        flow.start()

        failure = RandomDropFailure(1.0, random.Random(0))
        fabric.sim.schedule(
            50_000, _install_on_all_spines, fabric, failure
        )
        fabric.sim.run(until=20 * MS)

        assert not flow.finished, "total blackout must stall the flow"
        assert failure.dropped > 0, "failure must have caught live packets"
        report = checker.finalize()  # raises on any invariant breach
        assert report["violations"] == 0
        assert report["packets_dropped"] >= failure.dropped
        assert report["dropped_bytes"] > 0

    def test_failure_mid_flow_then_recovery_lets_flow_finish(self):
        """Install at 50 µs, recover at 2 ms: the transfer must ride out
        the outage through RTO recovery and still complete."""
        fabric = make_fabric()
        checker = install_checker(fabric)
        install_lb(fabric, "ecmp")
        flow = DctcpFlow(fabric, 0, 2, 50 * MSS, min_rto_ns=1 * MS)
        fabric.register_flow(flow)
        flow.start()

        failure = RandomDropFailure(1.0, random.Random(0))
        fabric.sim.schedule(50_000, _install_on_all_spines, fabric, failure)
        fabric.sim.schedule(2 * MS, _remove_from_all_spines, fabric, failure)
        fabric.sim.run(until=200 * MS)

        assert failure.dropped > 0
        assert flow.finished, "flow must recover once the failure clears"
        assert checker.finalize()["violations"] == 0


class TestFailureDuringProbe:
    def test_failure_catches_probe_in_flight(self):
        """Probes launch at t=0; the spine dies while they are still
        propagating.  Every probe is swallowed, no reply ever returns,
        and the probe bytes are properly accounted as drops."""
        fabric = make_fabric()
        checker = install_checker(fabric)
        shared = install_lb(fabric, "hermes")
        watch_leaf_states(checker, shared)
        probers = shared["probers"]

        failure = RandomDropFailure(1.0, random.Random(0))
        # t=1 µs: after the first probe round left the hosts (t=0 for
        # leaf 0) but before any probe reached a spine downlink.
        fabric.sim.schedule(1_000, _install_on_all_spines, fabric, failure)
        fabric.sim.run(until=3 * MS)

        sent = sum(prober.probes_sent for prober in probers.values())
        replies = sum(prober.replies_received for prober in probers.values())
        assert sent > 0, "probing must have started before the failure"
        assert replies == 0, "a total blackout must eat every probe"
        assert failure.dropped > 0
        assert checker.finalize()["violations"] == 0

    def test_probe_caught_mid_flight_does_not_corrupt_path_table(self):
        """The swallowed probes must leave the Algorithm 1 table in a
        legal state: classify() still returns a valid class for every
        path (validated by the checker's path-state hook)."""
        fabric = make_fabric()
        checker = install_checker(fabric)
        shared = install_lb(fabric, "hermes")
        watch_leaf_states(checker, shared)

        failure = RandomDropFailure(1.0, random.Random(0))
        fabric.sim.schedule(1_000, _install_on_all_spines, fabric, failure)
        fabric.sim.run(until=3 * MS)

        leaf_state = shared["leaf_states"][0]
        for path in fabric.topology.paths(0, 1):
            assert leaf_state.classify(1, path) in (0, 1, 2, 3)
        assert checker.report()["path_classes_checked"] > 0


class TestRecoveryBeforeSweep:
    def test_recovery_before_sweep_causes_no_false_detection(self):
        """A malfunction that appears mid-flow and recovers before the
        first τ-sweep (10 ms) fires — and that never actually dropped a
        matching packet — must not be flagged: the sweep sees healthy
        counters and ``failed_detections`` stays zero."""
        fabric = make_fabric()
        checker = install_checker(fabric)
        shared = install_lb(fabric, "hermes")
        watch_leaf_states(checker, shared)
        leaf_states = shared["leaf_states"]

        flow = DctcpFlow(fabric, 0, 2, 200 * MSS)
        fabric.register_flow(flow)
        flow.start()

        # Blackhole an (src, dst) pair that carries no traffic: the
        # malfunction is real (predicate installed) but this workload
        # never matches it.
        failure = BlackholeFailure({(1, 3)})
        fabric.sim.schedule(100_000, _install_on_all_spines, fabric, failure)
        fabric.sim.schedule(
            2 * MS, _remove_from_all_spines, fabric, failure
        )
        fabric.sim.run(until=25 * MS)  # past at least one 10 ms sweep

        assert failure.dropped == 0
        assert flow.finished
        assert all(
            state.failed_detections == 0 for state in leaf_states.values()
        ), "clean counters at sweep time must not produce detections"
        assert checker.finalize()["violations"] == 0

    def test_sweep_window_counters_reset_after_recovery(self):
        """Counters accumulated while the failure was live are consumed
        by the next sweep; the window after recovery starts clean."""
        fabric = make_fabric()
        shared = install_lb(fabric, "hermes")
        leaf_state = shared["leaf_states"][0]

        flow = DctcpFlow(fabric, 0, 2, 300 * MSS)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=25 * MS)  # at least one sweep has fired

        assert flow.finished
        for state in leaf_state._table.values():
            # Post-sweep windows on a healthy fabric stay near-empty.
            assert state.retx_pkts == 0
