"""Unit tests for FCT statistics, collectors and visibility sampling."""

import math

import pytest

from repro.telemetry.series import QueueSampler, UtilizationTracker
from repro.metrics.fct import (
    LARGE_FLOW_BYTES,
    SMALL_FLOW_BYTES,
    FctStats,
    FlowRecord,
    percentile,
)
from repro.metrics.visibility import VisibilitySampler
from repro.net.packet import Packet, PacketKind
from repro.transport.tcp import MSS, TcpFlow
from tests.conftest import make_fabric


def record(flow_id=0, size=50_000, fct_ms=1.0, **kw):
    fct_ns = None if fct_ms is None else int(fct_ms * 1e6)
    return FlowRecord(flow_id, 0, 2, size, 0, fct_ns, **kw)


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_value(self):
        assert percentile([5.0], 99) == 5.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = sorted(float(i) for i in range(100))
        assert percentile(data, 0) == 0.0
        assert percentile(data, 100) == 99.0


class TestFctStats:
    def test_mean(self):
        stats = FctStats([record(fct_ms=1.0), record(1, fct_ms=3.0)])
        assert stats.mean_ms() == 2.0

    def test_unfinished_excluded_from_plain_mean(self):
        stats = FctStats([record(fct_ms=1.0), record(1, fct_ms=None)])
        assert stats.mean_ms() == 1.0
        assert stats.unfinished_count == 1
        assert stats.unfinished_fraction == 0.5

    def test_unfinished_penalty(self):
        stats = FctStats([record(fct_ms=1.0), record(1, fct_ms=None)])
        assert stats.mean_ms(penalize_unfinished_ns=int(9e6)) == 5.0

    def test_empty_stats_nan(self):
        stats = FctStats([])
        assert math.isnan(stats.mean_ms())
        assert math.isnan(stats.median_ms())
        assert math.isnan(stats.p99_ms())

    def test_small_large_buckets(self):
        records = [
            record(0, size=SMALL_FLOW_BYTES - 1),
            record(1, size=SMALL_FLOW_BYTES + 1),
            record(2, size=LARGE_FLOW_BYTES + 1),
        ]
        stats = FctStats(records)
        assert stats.small.count == 1
        assert stats.large.count == 1

    def test_p99_tail(self):
        records = [record(i, fct_ms=1.0) for i in range(99)]
        records.append(record(99, fct_ms=100.0))
        stats = FctStats(records)
        # p99 interpolates toward the 100ms outlier.
        assert stats.p99_ms() > stats.median_ms()
        assert stats.p99_ms() == pytest.approx(1.99, rel=0.01)

    def test_median(self):
        stats = FctStats([record(i, fct_ms=float(i + 1)) for i in range(5)])
        assert stats.median_ms() == 3.0

    def test_retransmission_total(self):
        stats = FctStats([record(retransmissions=3), record(1, retransmissions=2)])
        assert stats.total_retransmissions() == 5

    def test_subset_predicate(self):
        stats = FctStats([record(0, fct_ms=1.0), record(1, fct_ms=9.0)])
        slow = stats.subset(lambda r: r.fct_ns > 5e6)
        assert slow.count == 1


class TestQueueSampler:
    def test_periodic_samples(self, fabric):
        port = fabric.topology.leaf_up[0][0]
        sampler = QueueSampler(fabric.sim, [port], period_ns=10_000)
        sampler.start()
        for i in range(50):
            port.enqueue(Packet(0, 0, 2, i, 1500, PacketKind.DATA))
        fabric.sim.run(until=100_000)
        samples = sampler.samples[port.name]
        assert len(samples) == 10
        assert sampler.max_backlog(port.name) > 0

    def test_stddev_measures_oscillation(self, fabric):
        port = fabric.topology.leaf_up[0][0]
        sampler = QueueSampler(fabric.sim, [port], period_ns=5_000)
        sampler.start()
        fabric.sim.run(until=30_000)
        assert sampler.stddev_backlog(port.name) == 0.0

    def test_stop(self, fabric):
        port = fabric.topology.leaf_up[0][0]
        sampler = QueueSampler(fabric.sim, [port], period_ns=5_000)
        sampler.start()
        fabric.sim.run(until=20_000)
        sampler.stop()
        n = len(sampler.samples[port.name])
        fabric.sim.run(until=100_000)
        assert len(sampler.samples[port.name]) == n

    def test_invalid_period(self, fabric):
        with pytest.raises(ValueError):
            QueueSampler(fabric.sim, [], period_ns=0)


class TestUtilizationTracker:
    def test_utilization_of_busy_port(self, fabric):
        port = fabric.topology.host_up[0]
        tracker = UtilizationTracker(fabric.sim, [port])
        for i in range(100):
            port.enqueue(Packet(0, 0, 2, i, 1500, PacketKind.DATA, path_id=0))
        fabric.sim.run(until=100 * port.tx_time_ns(1500))
        assert tracker.utilization()[port.name] == pytest.approx(1.0, rel=0.01)

    def test_reset(self, fabric):
        port = fabric.topology.host_up[0]
        tracker = UtilizationTracker(fabric.sim, [port])
        port.enqueue(Packet(0, 0, 2, 0, 1500, PacketKind.DATA, path_id=0))
        fabric.sim.run()
        tracker.reset()
        fabric.sim.run(until=fabric.sim.now + 10_000)
        assert tracker.utilization()[port.name] == 0.0


class TestVisibilitySampler:
    def test_counts_only_inter_rack_flows(self, fabric):
        sampler = VisibilitySampler(fabric, period_ns=1_000)
        inter = TcpFlow(fabric, 0, 2, 10 * MSS)
        intra = TcpFlow(fabric, 0, 1, 10 * MSS)
        sampler.flow_started(inter)
        sampler.flow_started(intra)
        assert len(sampler._active) == 1

    def test_switch_pair_average(self, fabric):
        sampler = VisibilitySampler(fabric, period_ns=1_000)
        sampler.start()
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        sampler.flow_started(flow)
        fabric.sim.run(until=10_000)
        # One active flow over 2 ordered leaf pairs -> 0.5 per pair.
        assert sampler.switch_pair_visibility() == pytest.approx(0.5)

    def test_host_pair_below_switch_pair(self, fabric):
        sampler = VisibilitySampler(fabric, period_ns=1_000)
        sampler.start()
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        sampler.flow_started(flow)
        fabric.sim.run(until=10_000)
        assert sampler.host_pair_visibility() < sampler.switch_pair_visibility()

    def test_finished_flow_removed(self, fabric):
        sampler = VisibilitySampler(fabric, period_ns=1_000)
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        sampler.flow_started(flow)
        sampler.flow_finished(flow)
        assert not sampler._active

    def test_no_samples_zero(self, fabric):
        sampler = VisibilitySampler(fabric)
        assert sampler.switch_pair_visibility() == 0.0
