"""Behavioural tests for the Hermes agent (end to end)."""

import random

import pytest

from repro.core.parameters import HermesParams
from repro.core.sensing import PATH_FAILED
from repro.lb.factory import install_lb
from repro.net.failures import BlackholeFailure, RandomDropFailure
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS
from tests.conftest import make_fabric


def hermes_fabric(seed=1, params=None, **overrides):
    fabric = make_fabric(seed=seed, **overrides)
    shared = install_lb(
        fabric, "hermes", **({"params": params} if params else {})
    )
    return fabric, shared


def run_flow(fabric, src=0, dst=2, size=50 * MSS, until_ms=5_000):
    flow = DctcpFlow(fabric, src, dst, size)
    fabric.register_flow(flow)
    flow.start()
    fabric.sim.run(until=fabric.sim.now + until_ms * 1_000_000)
    return flow


class TestBasicOperation:
    def test_clean_flow_completes_without_reroutes(self):
        fabric, _ = hermes_fabric()
        flow = run_flow(fabric)
        assert flow.finished
        assert fabric.hosts[0].lb.reroutes == 0

    def test_new_flows_spread_by_rp(self):
        """Concurrent flows from one rack take different spines."""
        fabric, _ = hermes_fabric()
        a = DctcpFlow(fabric, 0, 2, 500 * MSS)
        b = DctcpFlow(fabric, 1, 3, 500 * MSS)
        for flow in (a, b):
            fabric.register_flow(flow)
            flow.start()
        fabric.sim.run(until=200_000)
        assert a.current_path != b.current_path

    def test_sent_accounting_feeds_rp(self):
        fabric, shared = hermes_fabric()
        run_flow(fabric, size=20 * MSS)
        state = shared["leaf_states"][0]
        # Some path accumulated send-rate state.
        total = sum(
            ps._rp_value for ps in state._table.values()
        )
        assert total > 0


class TestBlackholeDetection:
    def _blackholed_fabric(self):
        fabric, shared = hermes_fabric()
        failure = BlackholeFailure([(0, 2)])
        failure.install(fabric.topology, 0)
        return fabric, shared, failure

    def test_flow_escapes_blackhole(self):
        fabric, _, _ = self._blackholed_fabric()
        flow = run_flow(fabric, size=20 * MSS, until_ms=2_000)
        assert flow.finished
        # Detection needs at most 3 timeouts (paper §3.1.2).
        assert flow.timeout_count <= 4

    def test_failed_pair_recorded(self):
        fabric, _, _ = self._blackholed_fabric()
        run_flow(fabric, size=20 * MSS, until_ms=2_000)
        agent = fabric.hosts[0].lb
        # Either the pair was blackholed on path 0 and detected, or the
        # flow was initially placed on path 1 and never saw the failure.
        if agent.blackhole_detections:
            assert (2, 0) in agent.failed_pairs

    def test_detection_after_three_timeouts_no_acks(self):
        fabric, _, _ = self._blackholed_fabric()
        agent = fabric.hosts[0].lb
        flow = DctcpFlow(fabric, 0, 2, 20 * MSS)
        flow.current_path = 0
        for _ in range(3):
            agent.on_timeout(flow, 0)
        assert (2, 0) in agent.failed_pairs
        assert agent.blackhole_detections == 1

    def test_acked_path_not_blackholed(self):
        fabric, _ = hermes_fabric()
        agent = fabric.hosts[0].lb
        flow = DctcpFlow(fabric, 0, 2, 20 * MSS)
        flow.current_path = 0
        agent.on_ack(flow, 0, False, 50_000, False)
        for _ in range(5):
            agent.on_timeout(flow, 0)
        assert (2, 0) not in agent.failed_pairs

    def test_record_reset_on_reroute(self):
        fabric, _ = hermes_fabric()
        agent = fabric.hosts[0].lb
        flow = DctcpFlow(fabric, 0, 2, 20 * MSS)
        flow.current_path = 0
        agent.on_timeout(flow, 0)
        agent.on_timeout(flow, 0)
        agent._reset_record(flow)
        agent.on_timeout(flow, 0)
        assert (2, 0) not in agent.failed_pairs

    def test_subsequent_flows_avoid_failed_pair(self):
        fabric, _, _ = self._blackholed_fabric()
        first = run_flow(fabric, size=20 * MSS, until_ms=2_000)
        assert first.finished
        agent = fabric.hosts[0].lb
        if not agent.failed_pairs:
            pytest.skip("first flow never landed on the blackholed path")
        second = run_flow(fabric, size=20 * MSS, until_ms=2_000)
        assert second.finished
        assert second.timeout_count == 0  # placed straight onto a live path


class TestRandomDropDetection:
    def test_lossy_spine_marked_failed(self):
        fabric, shared = hermes_fabric()
        failure = RandomDropFailure(0.1, random.Random(0))
        failure.install(fabric.topology, 0)
        # Several flows generate enough per-path samples for the sweep.
        flows = [
            DctcpFlow(fabric, src, dst, 200 * MSS)
            for src, dst in [(0, 2), (1, 3), (0, 3), (1, 2)]
        ]
        for flow in flows:
            fabric.register_flow(flow)
            flow.start()
        fabric.sim.run(until=100_000_000)
        state = shared["leaf_states"][0]
        assert state.failed_detections >= 1


class TestCautiousGates:
    def test_small_flow_not_rerouted(self):
        params = HermesParams(size_threshold_bytes=1_000_000)
        fabric, _ = hermes_fabric(params=params)
        agent = fabric.hosts[0].lb
        flow = DctcpFlow(fabric, 0, 2, 20 * MSS)
        flow.bytes_sent = 10_000  # below S
        assert not agent._gates_allow(flow)

    def test_fast_flow_not_rerouted(self):
        fabric, _ = hermes_fabric()
        agent = fabric.hosts[0].lb
        flow = DctcpFlow(fabric, 0, 2, 2000 * MSS)
        flow.bytes_sent = 10_000_000
        flow._rate_value = 1e9  # force a high instantaneous rate estimate
        flow._rate_last = fabric.sim.now
        assert flow.rate_bps() > 0.3 * 10e9
        assert not agent._gates_allow(flow)

    def test_large_slow_flow_allowed(self):
        fabric, _ = hermes_fabric()
        agent = fabric.hosts[0].lb
        flow = DctcpFlow(fabric, 0, 2, 2000 * MSS)
        flow.bytes_sent = 10_000_000
        assert agent._gates_allow(flow)

    def test_vigorous_mode_ignores_gates(self):
        params = HermesParams(cautious_rerouting=False)
        fabric, _ = hermes_fabric(params=params)
        agent = fabric.hosts[0].lb
        flow = DctcpFlow(fabric, 0, 2, 20 * MSS)
        assert agent._gates_allow(flow)


class TestSelfInflictedRetxGrace:
    def test_retx_right_after_reroute_not_counted(self):
        fabric, shared = hermes_fabric()
        agent = fabric.hosts[0].lb
        flow = DctcpFlow(fabric, 0, 2, 100 * MSS)
        flow.current_path = 0
        agent._reset_record(flow)  # simulates a reroute at t=now
        agent.on_retransmit(flow, 0)
        state = shared["leaf_states"][0]
        assert state.state(1, 0).retx_pkts == 0

    def test_retx_after_grace_counted(self):
        fabric, shared = hermes_fabric()
        agent = fabric.hosts[0].lb
        flow = DctcpFlow(fabric, 0, 2, 100 * MSS)
        flow.current_path = 0
        agent._reset_record(flow)
        fabric.sim.run(until=fabric.sim.now + agent.reroute_retx_grace_ns + 1)
        agent.on_retransmit(flow, 0)
        state = shared["leaf_states"][0]
        assert state.state(1, 0).retx_pkts == 1


class TestTimeoutTrigger:
    def test_timeout_flag_forces_placement(self):
        fabric, shared = hermes_fabric()
        agent = fabric.hosts[0].lb
        state = shared["leaf_states"][0]
        flow = DctcpFlow(fabric, 0, 2, 100 * MSS)
        flow.current_path = 0
        state.mark_failed(1, 1)  # only path 0 is usable
        flow.if_timeout = True
        path = agent.select_path(flow, 1500)
        assert path == 0
        assert flow.if_timeout is False  # consumed

    def test_failed_path_evacuated(self):
        fabric, shared = hermes_fabric()
        agent = fabric.hosts[0].lb
        state = shared["leaf_states"][0]
        flow = DctcpFlow(fabric, 0, 2, 100 * MSS)
        flow.current_path = 0
        state.mark_failed(1, 0)
        assert agent.select_path(flow, 1500) == 1
        assert agent.reroutes == 1
