"""Unit tests for CLOVE-ECN."""

import pytest

from repro.lb.clove import MIN_WEIGHT, CloveEcnLB
from repro.lb.factory import install_lb
from repro.transport.tcp import MSS, TcpFlow


class TestCloveWeights:
    def test_initial_weights_equal(self, fabric):
        install_lb(fabric, "clove-ecn")
        agent = fabric.hosts[0].lb
        weights = agent._weights_for(1)
        assert weights == {0: 0.5, 1: 0.5}

    def test_marked_ack_shifts_weight(self, fabric):
        install_lb(fabric, "clove-ecn", beta=0.5)
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        agent.on_ack(flow, 0, ece=True, rtt_ns=50_000, is_retx=False)
        weights = agent._weights_for(1)
        assert weights[0] == pytest.approx(0.25)
        assert weights[1] == pytest.approx(0.75)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_unmarked_ack_no_change(self, fabric):
        install_lb(fabric, "clove-ecn")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        agent.on_ack(flow, 0, ece=False, rtt_ns=50_000, is_retx=False)
        assert agent._weights_for(1) == {0: 0.5, 1: 0.5}

    def test_weight_floor(self, fabric):
        install_lb(fabric, "clove-ecn", beta=0.9)
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        for _ in range(100):
            agent.on_ack(flow, 0, ece=True, rtt_ns=50_000, is_retx=False)
        weights = agent._weights_for(1)
        assert weights[0] >= MIN_WEIGHT - 1e-12
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_invalid_beta_rejected(self, fabric):
        with pytest.raises(ValueError):
            CloveEcnLB(fabric.hosts[0], fabric, fabric.rng.get("t"), beta=1.5)


class TestClovePathChoice:
    def test_picks_follow_weights(self, fabric):
        install_lb(fabric, "clove-ecn", flowlet_timeout_ns=1)
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        # Crush path 0's weight; nearly every flowlet should use path 1.
        for _ in range(50):
            agent.on_ack(flow, 0, ece=True, rtt_ns=50_000, is_retx=False)
        picks = []
        for _ in range(200):
            picks.append(agent.select_path(flow, 1500))
            flow.last_tx_time = fabric.sim.now
            fabric.sim.run(until=fabric.sim.now + 10)
        assert picks.count(1) > 180

    def test_stable_within_flowlet(self, fabric):
        install_lb(fabric, "clove-ecn", flowlet_timeout_ns=1_000_000)
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        first = agent.select_path(flow, 1500)
        flow.last_tx_time = fabric.sim.now
        assert agent.select_path(flow, 1500) == first

    def test_flow_cleanup(self, fabric):
        install_lb(fabric, "clove-ecn")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        agent.select_path(flow, 1500)
        agent.on_flow_done(flow)
        assert flow.flow_id not in agent._paths
