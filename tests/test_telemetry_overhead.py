"""Tracing must observe, never perturb.

A traced run of the reference cell must produce bit-identical per-flow
statistics to an untraced run — the hooks only read simulator state, so
any divergence means a hook mutated something.  Also pins the cache
semantics: traced cells never hit or populate the result cache.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.parallel import run_cells
from repro.experiments.runner import run_experiment
from repro.net.topology import TopologyConfig


def reference_config(**overrides) -> ExperimentConfig:
    base = dict(
        topology=TopologyConfig(),
        lb="hermes",
        workload="web-search",
        load=0.5,
        n_flows=60,
        seed=3,
        size_scale=0.05,
        time_scale=0.05,
        failure=FailureSpec(kind="random_drop", spine=0, drop_rate=0.04),
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def flow_tuples(result):
    return [
        (r.flow_id, r.src, r.dst, r.size_bytes, r.start_ns, r.fct_ns,
         r.retransmissions, r.timeouts)
        for r in result.stats.records
    ]


class TestTracingIsPureObservation:
    def test_traced_run_identical_to_untraced(self):
        plain = run_experiment(reference_config())
        traced = run_experiment(reference_config(trace=True))
        assert flow_tuples(plain) == flow_tuples(traced)
        assert plain.sim_time_ns == traced.sim_time_ns
        assert plain.events == traced.events
        assert plain.total_reroutes == traced.total_reroutes
        assert plain.telemetry is None
        assert traced.telemetry is not None
        assert traced.telemetry.tracer.recorded > 0
        assert traced.telemetry.audit.recorded > 0

    def test_traced_cells_bypass_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        config = reference_config(n_flows=20, trace=True)
        run_cells([config], jobs=1, use_cache=True, cache_dir=cache_dir)
        # Nothing was stored for the traced cell.
        import os

        stored = [
            name
            for name in (os.listdir(cache_dir) if os.path.isdir(cache_dir) else [])
            if name.endswith(".pkl")
        ]
        assert stored == []
        # The untraced twin is cached normally and differs in cache key.
        plain = dataclasses.replace(config, trace=False)
        run_cells([plain], jobs=1, use_cache=True, cache_dir=cache_dir)
        stored = [
            name for name in os.listdir(cache_dir) if name.endswith(".pkl")
        ]
        assert len(stored) == 1

    def test_repro_trace_env_forces_cache_off(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        config = reference_config(n_flows=20)
        monkeypatch.setenv("REPRO_TRACE", "1")
        result = run_cells(
            [config], jobs=1, use_cache=True, cache_dir=cache_dir
        )[0]
        assert result.stats.records
        import os

        assert not os.path.isdir(cache_dir) or not any(
            name.endswith(".pkl") for name in os.listdir(cache_dir)
        )
