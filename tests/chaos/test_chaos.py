"""Seeded chaos harness: randomized scenarios under full invariant checking.

Three layers:

* a sweep of >= 50 deterministic seeds, every invariant enabled, all of
  which must pass (the "simulator is self-consistent" contract);
* mutation checks proving the invariants have teeth — an intentionally
  injected accounting bug (a vanished packet, a leaked backlog byte)
  must be *caught*, with a replayable fingerprint;
* shrinking: a failing config minimizes to a smaller config that still
  fails.

Replay one case from a violation fingerprint with::

    REPRO_CHAOS_SEED=<n> pytest tests/chaos/test_chaos.py -q -k replay
"""

import os

import pytest

from repro.net.fabric import Fabric
from repro.net.port import OutputPort
from repro.validate.errors import (
    CapacityError,
    ConservationError,
    InvariantViolation,
)
from repro.validate.fuzz import chaos_config, run_case, shrink_case

#: The CI sweep: >= 50 fixed seeds, each expanding into a randomized
#: topology/scheme/workload/failure scenario.
CHAOS_SEEDS = list(range(1, 57))


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_case_holds_invariants(seed):
    case = run_case(seed)  # raises InvariantViolation on any breach
    assert case.ok
    inv = case.invariants
    assert inv is not None, "validated run must publish its invariant report"
    assert inv["violations"] == 0
    assert inv["packets_sent"] > 0
    assert inv["events_checked"] == case.events
    # Ledger identity, re-stated from the published counters.
    assert (
        inv["delivered_bytes"] + inv["dropped_bytes"] + inv["inflight_bytes"]
        <= inv["injected_bytes"]
    )


def test_chaos_is_deterministic():
    first = run_case(11)
    second = run_case(11)
    assert first.events == second.events
    assert first.mean_fct_ms == second.mean_fct_ms
    assert first.invariants == second.invariants


def test_chaos_covers_failures_and_schemes():
    """The sweep draws from the factory registry itself, so *every*
    registered scheme — including ones landed after this test was
    written — must appear across the >= 50 seeds."""
    from repro.lb.factory import scheme_names

    configs = [chaos_config(seed) for seed in CHAOS_SEEDS]
    schemes = {config.lb for config in configs}
    assert schemes == set(scheme_names()), (
        f"sweep missed {sorted(set(scheme_names()) - schemes)}"
    )
    assert any(config.failure is not None for config in configs)
    assert any(config.topology.link_overrides for config in configs)
    assert any(config.transport == "tcp" for config in configs)


#: One pinned seed per post-2017 zoo scheme: these specific draws are
#: load-bearing (they guarantee the new schemes meet the invariant
#: checker even if the sweep's seed list shifts).
ZOO_PINNED_SEEDS = {"reps": 5, "diffflow": 8, "rdna": 7}


@pytest.mark.parametrize("scheme,seed", sorted(ZOO_PINNED_SEEDS.items()))
def test_zoo_scheme_pinned_chaos_seed(scheme, seed):
    assert chaos_config(seed).lb == scheme, (
        f"seed {seed} no longer draws {scheme}; re-pin ZOO_PINNED_SEEDS"
    )
    case = run_case(seed)
    assert case.ok
    assert case.invariants["violations"] == 0


def test_replay_seed_from_environment():
    """Entry point for fingerprint replay lines (see chaos_command)."""
    raw = os.environ.get("REPRO_CHAOS_SEED")
    if raw is None:
        pytest.skip("set REPRO_CHAOS_SEED=<n> to replay one chaos case")
    case = run_case(int(raw))
    assert case.ok


# --------------------------------------------------------------------- #
# Mutation checks: injected bugs must be caught, with a usable
# fingerprint.
# --------------------------------------------------------------------- #


class _vanishing_forward:
    """Context manager: Fabric.forward silently drops the Nth delivery.

    Patching the *class* before the fabric is built means the bound
    method every port captures is already the broken one — exactly the
    shape of a real accounting bug (a code path that forgets a packet).
    """

    def __init__(self, nth: int = 5):
        self.nth = nth
        self.vanished = 0

    def __enter__(self):
        original = Fabric.forward
        state = self

        def forward(self, packet):
            packet.hop += 1
            if packet.hop < len(packet.route):
                packet.route[packet.hop].enqueue(packet)
                return
            if state.nth > 0:
                state.nth -= 1
                if state.nth == 0:
                    state.vanished += 1  # packet silently evaporates
                    return
            if self.checker is not None:
                self.checker.on_deliver(packet)
            self.hosts[packet.dst].receive(packet)

        self._original = original
        Fabric.forward = forward
        return self

    def __exit__(self, *exc_info):
        Fabric.forward = self._original
        return False


def test_mutation_vanished_packet_is_caught():
    """An intentionally injected accounting bug: one packet is forwarded
    into the void.  The conservation audit must notice the ledger no
    longer balances and name the missing packet."""
    with _vanishing_forward(nth=5) as mutation:
        with pytest.raises(ConservationError) as excinfo:
            run_case(1)
    assert mutation.vanished == 1
    message = str(excinfo.value)
    assert "python -m repro chaos --seed 1" in message, (
        "violation must carry the exact replay command"
    )
    assert excinfo.value.fingerprint.seed == 1


def test_mutation_backlog_leak_is_caught():
    """A port that mis-accounts its backlog (classic off-by-a-packet
    drain bug) must trip the capacity/shadow-queue invariant."""
    original = OutputPort._tx_done
    leaked = {"count": 0}

    def leaky(self):
        packet = self._inflight
        original(self)
        if leaked["count"] == 0 and packet.size > 0:
            leaked["count"] += 1
            self.backlog_bytes += packet.size  # phantom bytes appear
    OutputPort._tx_done = leaky
    try:
        with pytest.raises(CapacityError):
            run_case(1)
    finally:
        OutputPort._tx_done = original
    assert leaked["count"] == 1


def test_mutation_violation_shrinks_to_minimal_config():
    """Under a mutation that always fires, shrinking walks the failing
    config down to the smallest scenario that still reproduces it."""
    from dataclasses import replace

    from repro.experiments.runner import run_experiment

    def probe(config):
        with _vanishing_forward(nth=3):
            try:
                run_experiment(replace(config, validate=True))
            except InvariantViolation as exc:
                return exc
        return None

    start = chaos_config(3)  # draws a blackhole failure spec
    assert start.failure is not None
    shrunk = shrink_case(start, probe=probe, max_attempts=12)
    assert isinstance(shrunk.error, ConservationError)
    assert shrunk.config.failure is None, "failure injection shrunk away"
    assert shrunk.config.n_flows < start.n_flows
    # The shrunken config must still fail on its own.
    assert probe(shrunk.config) is not None


# --------------------------------------------------------------------- #
# Dynamic fault schedules under chaos
# --------------------------------------------------------------------- #

#: Smoke slice of the faulted sweep; CI runs the full >= 50-seed sweep
#: via ``python -m repro chaos --faults``.
FAULTED_SMOKE_SEEDS = list(range(1, 13))


@pytest.mark.parametrize("seed", FAULTED_SMOKE_SEEDS)
def test_chaos_with_fault_schedule_holds_invariants(seed):
    case = run_case(seed, with_faults=True)
    assert case.ok
    assert case.config.faults is not None
    assert case.invariants is not None
    assert case.invariants["violations"] == 0


def test_faulted_case_is_deterministic():
    first = run_case(4, with_faults=True)
    second = run_case(4, with_faults=True)
    assert first.events == second.events
    assert first.mean_fct_ms == second.mean_fct_ms
    assert first.invariants == second.invariants


def test_forcing_faults_keeps_base_scenario():
    """with_faults only adds the schedule: topology, scheme, workload and
    flow count are untouched, so a faulted case diffs cleanly against
    its unfaulted twin."""
    from dataclasses import replace

    plain = chaos_config(6, with_faults=False)
    faulted = chaos_config(6, with_faults=True)
    assert plain.faults is None
    assert faulted.faults is not None
    assert replace(faulted, faults=None) == plain


def test_fault_draw_covers_shapes_and_avoids_cut_links():
    configs = [
        chaos_config(seed, with_faults=True) for seed in range(1, 57)
    ]
    actions = {c.faults.events[0].action for c in configs}
    # Every shape family must appear across the sweep.
    assert {"link_down", "link_degrade", "flap",
            "random_drop_start", "blackhole_on"} <= actions
    for config in configs:
        cut = {
            link for link, rate in config.topology.link_overrides.items()
            if rate == 0.0
        }
        for event in config.faults.events:
            if event.action in ("link_down", "link_degrade", "flap"):
                assert (event.leaf, event.spine) not in cut, (
                    f"schedule targets statically cut link in {config}"
                )


def test_shrinking_drops_fault_schedule_first():
    from repro.validate.fuzz import _reductions

    config = chaos_config(1, with_faults=True)
    first = next(_reductions(config))
    assert first.faults is None
    assert first.failure == config.failure
