"""Unit tests for DRILL and FlowBender."""

import pytest

from repro.lb.drill import DrillLB
from repro.lb.factory import install_lb
from repro.lb.flowbender import FlowBenderLB
from repro.net.packet import Packet, PacketKind
from repro.transport.tcp import MSS, TcpFlow
from tests.conftest import make_fabric


class TestDrill:
    def test_invalid_samples_rejected(self, fabric):
        with pytest.raises(ValueError):
            DrillLB(fabric.hosts[0], fabric, fabric.rng.get("t"), samples=0)

    def test_prefers_shorter_local_queue(self, fabric):
        install_lb(fabric, "drill")
        agent = fabric.hosts[0].lb
        # Fill uplink 0's queue.
        up = fabric.topology.leaf_up[0][0]
        for i in range(50):
            up.enqueue(Packet(9, 0, 2, i, 1500, PacketKind.DATA, path_id=0))
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        picks = {agent.select_path(flow, 1500) for _ in range(10)}
        assert picks == {1}

    def test_remembers_best(self, fabric):
        install_lb(fabric, "drill")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        agent.select_path(flow, 1500)
        assert 1 in agent._best.values() or 0 in agent._best.values()

    def test_blind_to_downstream_congestion(self, fabric):
        """DRILL's documented weakness: spine->leaf queues are invisible."""
        install_lb(fabric, "drill")
        agent = fabric.hosts[0].lb
        down = fabric.topology.spine_down[0][1]
        for i in range(200):
            down.enqueue(Packet(9, 0, 2, i, 1500, PacketKind.DATA, path_id=0))
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        picks = {agent.select_path(flow, 1500) for _ in range(30)}
        assert 0 in picks  # still willing to use the congested spine


class TestFlowBender:
    def test_threshold_validated(self, fabric):
        with pytest.raises(ValueError):
            FlowBenderLB(fabric.hosts[0], fabric, fabric.rng.get("t"),
                         ecn_threshold=0.0)

    def test_stable_path_without_marks(self, fabric):
        install_lb(fabric, "flowbender")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        first = agent.select_path(flow, 1500)
        for _ in range(20):
            agent.on_ack(flow, first, ece=False, rtt_ns=50_000, is_retx=False)
            fabric.sim.run(until=fabric.sim.now + 20_000)
        assert agent.select_path(flow, 1500) == first

    def test_bounces_on_sustained_marks(self, fabric):
        install_lb(fabric, "flowbender", epoch_ns=50_000)
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        first = agent.select_path(flow, 1500)
        for _ in range(20):
            agent.on_ack(flow, first, ece=True, rtt_ns=50_000, is_retx=False)
            fabric.sim.run(until=fabric.sim.now + 10_000)
        assert agent.select_path(flow, 1500) != first
        assert agent.reroutes >= 1

    def test_bounces_on_timeout(self, fabric):
        install_lb(fabric, "flowbender")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        first = agent.select_path(flow, 1500)
        agent.on_timeout(flow, first)
        assert agent.select_path(flow, 1500) != first

    def test_flow_cleanup(self, fabric):
        install_lb(fabric, "flowbender")
        agent = fabric.hosts[0].lb
        flow = TcpFlow(fabric, 0, 2, 10 * MSS)
        agent.select_path(flow, 1500)
        agent.on_flow_done(flow)
        assert flow.flow_id not in agent._state
