"""Unit tests for the UDP constant-rate source."""

import pytest

from repro.transport.udp import UdpFlow
from tests.conftest import make_fabric


class TestUdpFlow:
    def test_rate_validated(self, fabric):
        with pytest.raises(ValueError):
            UdpFlow(fabric, 0, 2, rate_bps=0)

    def test_packet_size_validated(self, fabric):
        with pytest.raises(ValueError):
            UdpFlow(fabric, 0, 2, rate_bps=1e9, packet_bytes=10)

    def test_pacing_interval(self, fabric):
        flow = UdpFlow(fabric, 0, 2, rate_bps=1e9, packet_bytes=1500)
        assert flow.interval_ns == 12_000  # 1500B*8/1Gbps

    def test_duration_bounds_sending(self, fabric):
        flow = UdpFlow(
            fabric, 0, 2, rate_bps=1e9, duration_ns=120_000, fixed_path=0
        )
        flow.start()
        fabric.register_flow(flow)
        fabric.sim.run(until=1_000_000)
        assert flow.pkts_sent == 10  # 120us / 12us per packet

    def test_goodput_matches_rate(self, fabric):
        flow = UdpFlow(
            fabric, 0, 2, rate_bps=2e9, duration_ns=1_000_000, fixed_path=0
        )
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=5_000_000)
        assert flow.mean_goodput_gbps() * 8 == pytest.approx(2.0 * 8, rel=0.1)

    def test_goodput_series_nonempty(self, fabric):
        flow = UdpFlow(
            fabric, 0, 2, rate_bps=5e9, duration_ns=3_000_000,
            fixed_path=0, rx_bin_ns=1_000_000,
        )
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=10_000_000)
        series = flow.goodput_series()
        assert len(series) >= 3
        # Middle bins carry ~5 Gbps.
        assert series[1][1] == pytest.approx(5.0, rel=0.15)

    def test_stop_halts_sending(self, fabric):
        flow = UdpFlow(fabric, 0, 2, rate_bps=1e9, fixed_path=0)
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=100_000)
        flow.stop()
        sent = flow.pkts_sent
        fabric.sim.run(until=1_000_000)
        assert flow.pkts_sent == sent

    def test_rate_limited_by_bottleneck(self):
        fabric = make_fabric(link_overrides={(0, 0): 1.0})
        flow = UdpFlow(
            fabric, 0, 2, rate_bps=9e9, duration_ns=2_000_000, fixed_path=0
        )
        fabric.register_flow(flow)
        flow.start()
        fabric.sim.run(until=20_000_000)
        # Receiver cannot see more than the 1 Gbps bottleneck delivers.
        assert flow.mean_goodput_gbps() < 1.3
