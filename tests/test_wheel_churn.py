"""Cancelled-event retention in the wheel under schedule/cancel churn.

A workload that rapidly schedules and cancels timers (RTO re-arms on
every ACK, abandoned flap timers) used to leave every cancelled event in
its slot list or in the overflow heap until the cursor physically
reached it — on a long-horizon run that is unbounded memory growth.  The
wheel now purges dead events lazily (amortized O(1), counted in
``wheel_stats()["purged"]``); these tests pin the bound.
"""

from repro.sim.engine import Simulator, WheelSimulator


def _noop() -> None:
    pass


def test_slot_churn_stays_bounded():
    """Cancel-heavy churn into one in-window slot must not grow the slot
    without bound."""
    sim = WheelSimulator()
    slot_span = 1 << sim._shift
    churn = 20_000
    for _ in range(churn):
        event = sim.schedule(10 * slot_span, _noop)  # in-window slot
        event.cancel()
    # Everything scheduled was cancelled; the purge must have reclaimed
    # nearly all of it (at most one threshold's worth may linger).
    assert sim.pending < 2 * sim._slot_purge_at
    assert sim.wheel_stats()["purged"] > churn * 0.9


def test_overflow_churn_stays_bounded():
    """Same bound for far-future (overflow heap) churn."""
    sim = WheelSimulator()
    window = (1 << sim._shift) * sim._num_slots
    churn = 20_000
    for _ in range(churn):
        event = sim.schedule(10 * window, _noop)  # beyond the window
        event.cancel()
    assert len(sim._overflow) < 2 * sim._overflow_purge_at
    assert sim.wheel_stats()["purged"] > churn * 0.9


def test_pooled_churn_recycles_into_free_list():
    """Cancelled *pooled* events come back through the free list instead
    of piling up for the allocator."""
    sim = WheelSimulator()
    slot_span = 1 << sim._shift
    churn = 5_000
    for _ in range(churn):
        sim.schedule_pooled(10 * slot_span, _noop).cancel()
    # Each schedule either reuses a purged event or allocates a fresh
    # one, so the total object population (still parked in the slot +
    # sitting in the free list) is the allocation count — it must stay
    # bounded by the purge threshold, not grow with the churn volume.
    population = sim.pending + len(sim._event_pool)
    assert population < 2 * sim._slot_purge_at
    assert sim.wheel_stats()["purged"] > churn * 0.9
    # And the survivors still dispatch.
    live = [sim.schedule_pooled(10 * slot_span, _noop) for _ in range(100)]
    fired = sim.run()
    assert fired == len(live)


def test_churn_preserves_dispatch_order():
    """Purging dead events must not disturb the (time, seq) total order
    of the survivors — compare against the heap engine."""

    def workload(sim):
        order = []
        slot_span = 1 << 12
        for i in range(400):
            delay = (i * 37) % 50 * slot_span + (i % 7)
            event = sim.schedule(delay, order.append, (delay, i))
            if i % 3 == 0:
                event.cancel()
            if i % 5 == 0:
                # Extra dead weight in the same slots.
                sim.schedule(delay, order.append, ("dead", i)).cancel()
        sim.run()
        return order

    assert workload(WheelSimulator()) == workload(Simulator())


def test_purge_threshold_backs_off_for_live_events():
    """A slot genuinely full of live events must not trigger an O(n)
    sweep per append: the threshold grows past the live population."""
    sim = WheelSimulator()
    slot_span = 1 << sim._shift
    n = 4_000
    for _ in range(n):
        sim.schedule(10 * slot_span, _noop)  # all live, same slot
    assert sim._slot_purge_at > n  # threshold escaped the population
    assert sim.pending == n
    assert sim.run() == n
