"""Scheduler equivalence: the calendar wheel IS the binary heap.

The wheel engine is a pure performance substitution — every observable
output (per-flow records, event counts, reroutes, fault timelines) must
be bit-identical to the heap's on the same config.  This file enforces
that contract three ways:

1. the committed golden reference grid, recomputed under each engine;
2. a per-cell record-level differential on the golden configs;
3. a chaos-seed differential: randomized configs (failures, faults,
   transports) run under both engines and compared record-by-record.

Plus the knob plumbing: ``ExperimentConfig.scheduler`` validation, the
``REPRO_SCHEDULER`` environment override, and the cache bypass when an
override forces a non-default engine.
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.engine import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    Simulator,
    WheelSimulator,
    make_simulator,
    resolve_scheduler,
    scheduler_forced,
)
from repro.validate import golden
from repro.validate.fuzz import chaos_config

#: Differential chaos seeds: enough to cover every scheme/transport/
#: failure bucket the generator rotates through.
CHAOS_SEEDS = range(1, 11)


# --------------------------------------------------------------------- #
# Golden grid under both engines
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_golden_grid_matches_committed_reference(scheduler):
    """Both engines must reproduce the committed (heap-computed)
    reference statistics exactly."""
    expected = golden.load_reference(golden.DEFAULT_PATH)
    assert expected is not None, (
        f"missing golden reference at {golden.DEFAULT_PATH}"
    )
    actual = golden.compute_reference(scheduler=scheduler)
    mismatches = golden.compare_reference(expected, actual)
    assert not mismatches, (
        f"{scheduler} engine drifted from the committed reference:\n"
        + "\n".join(mismatches)
    )


def test_golden_cells_bit_identical_across_engines():
    """Stronger than the summary check: the full per-flow record lists
    must match, flow by flow, field by field."""
    for config in golden.golden_configs()[:4]:
        heap = run_experiment(dataclasses.replace(config, scheduler="heap"))
        wheel = run_experiment(dataclasses.replace(config, scheduler="wheel"))
        assert heap.stats.records == wheel.stats.records, (
            f"records diverged on {config.lb}@{config.load}"
        )
        assert heap.events == wheel.events
        assert heap.sim_time_ns == wheel.sim_time_ns
        assert heap.total_reroutes == wheel.total_reroutes


# --------------------------------------------------------------------- #
# Chaos-seed differential
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_seed_bit_identical_across_engines(seed):
    """Randomized configs (scheme x transport x failure rotation) must
    produce identical results under heap and wheel."""
    config = chaos_config(seed)
    # The differential is about the engines, not the invariant layer;
    # drop validate so the comparison runs at full speed.
    config = dataclasses.replace(config, validate=False)
    heap = run_experiment(dataclasses.replace(config, scheduler="heap"))
    wheel = run_experiment(dataclasses.replace(config, scheduler="wheel"))
    assert heap.stats.records == wheel.stats.records, (
        f"seed {seed} ({config.lb}/{config.transport}) diverged"
    )
    assert heap.events == wheel.events
    assert heap.total_reroutes == wheel.total_reroutes
    assert list(heap.fault_timeline or ()) == list(wheel.fault_timeline or ())


# --------------------------------------------------------------------- #
# Knob plumbing
# --------------------------------------------------------------------- #


def test_config_rejects_unknown_scheduler():
    topology = golden.golden_configs()[0].topology
    with pytest.raises(ValueError, match="unknown scheduler"):
        ExperimentConfig(topology=topology, lb="ecmp", scheduler="quantum")


def test_make_simulator_engine_selection():
    assert type(make_simulator("heap")) is Simulator
    assert type(make_simulator("wheel")) is WheelSimulator


def test_env_override_wins(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
    assert resolve_scheduler("heap") == "wheel"
    assert scheduler_forced()
    assert type(make_simulator("heap")) is WheelSimulator


def test_env_override_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "abacus")
    with pytest.raises(ValueError, match="REPRO_SCHEDULER"):
        resolve_scheduler("heap")


def test_no_override_defaults_to_config(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    assert DEFAULT_SCHEDULER == "wheel"
    assert resolve_scheduler(None) == DEFAULT_SCHEDULER
    assert resolve_scheduler("heap") == "heap"
    assert resolve_scheduler("wheel") == "wheel"
    assert resolve_scheduler("wheel:auto") == "wheel:auto"
    assert not scheduler_forced()


def test_wheel_auto_builds_labelled_wheel():
    sim = make_simulator("wheel:auto")
    assert type(sim) is WheelSimulator
    assert sim.scheduler == "wheel:auto"
    # Explicit geometry lands in the wheel shape.
    sim = make_simulator("wheel:auto", slot_ns_bits=10, num_slot_bits=9)
    stats = sim.wheel_stats()
    assert stats["slot_ns"] == 1 << 10
    assert stats["num_slots"] == 1 << 9


def test_config_default_scheduler_is_wheel():
    topology = golden.golden_configs()[0].topology
    config = ExperimentConfig(topology=topology, lb="ecmp")
    assert config.scheduler == "wheel"
