"""Slot-width autotuning for ``scheduler="wheel:auto"``.

The geometry is derived from the topology (fastest link rate) and the
experiment's time scale, then optionally refined from profiler counters.
Both derivations must be deterministic pure functions — the chosen
geometry is recorded in ``ResultSummary.scheduler_info`` so a run can be
reproduced exactly.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_experiment
from repro.net.topology import TopologyConfig
from repro.sim.tuning import (
    MAX_NUM_SLOT_BITS,
    MAX_SLOT_NS_BITS,
    MIN_NUM_SLOT_BITS,
    MIN_SLOT_NS_BITS,
    WheelGeometry,
    fastest_link_gbps,
    refine_wheel_geometry,
    wheel_geometry_for,
)
from repro.validate import golden


def _topo(**kwargs) -> TopologyConfig:
    base = dict(n_leaves=2, n_spines=2, hosts_per_leaf=2)
    base.update(kwargs)
    return TopologyConfig(**base)


def test_fastest_link_considers_overrides():
    topo = _topo(host_link_gbps=10.0, spine_link_gbps=40.0)
    assert fastest_link_gbps(topo) == 40.0
    topo = _topo(link_overrides={(0, 1): 100.0})
    assert fastest_link_gbps(topo) == 100.0


def test_geometry_is_deterministic_and_power_of_two():
    topo = _topo()
    a = wheel_geometry_for(topo, time_scale=0.05)
    b = wheel_geometry_for(topo, time_scale=0.05)
    assert a == b
    assert a.slot_ns == 1 << a.slot_ns_bits
    assert a.num_slots == 1 << a.num_slot_bits
    assert MIN_SLOT_NS_BITS <= a.slot_ns_bits <= MAX_SLOT_NS_BITS
    assert MIN_NUM_SLOT_BITS <= a.num_slot_bits <= MAX_NUM_SLOT_BITS


def test_faster_links_mean_finer_slots():
    slow = wheel_geometry_for(_topo(host_link_gbps=1.0, spine_link_gbps=1.0))
    fast = wheel_geometry_for(
        _topo(host_link_gbps=100.0, spine_link_gbps=100.0)
    )
    assert fast.slot_ns_bits < slow.slot_ns_bits


def test_window_covers_scaled_rto_floor():
    # The wheel window must cover ~2x the (scaled) RTO floor so that
    # retransmission timers land in slots, not the overflow heap.
    for time_scale in (0.05, 1.0):
        geometry = wheel_geometry_for(_topo(), time_scale=time_scale)
        assert geometry.window_ns >= max(
            int(2 * 10_000_000 * time_scale), 1_000_000
        )


def test_geometry_clamps_extremes():
    # Absurdly slow links would want huge slots; clamp caps them.
    crawl = wheel_geometry_for(
        _topo(host_link_gbps=0.001, spine_link_gbps=0.001)
    )
    assert crawl.slot_ns_bits == MAX_SLOT_NS_BITS
    blaze = wheel_geometry_for(
        _topo(host_link_gbps=10_000.0, spine_link_gbps=10_000.0)
    )
    assert blaze.slot_ns_bits == MIN_SLOT_NS_BITS


def test_to_dict_round_trips_the_shape():
    geometry = wheel_geometry_for(_topo(), time_scale=0.05)
    d = geometry.to_dict()
    assert d["slot_ns_bits"] == geometry.slot_ns_bits
    assert d["num_slot_bits"] == geometry.num_slot_bits
    assert d["slot_ns"] == geometry.slot_ns
    assert d["window_ns"] == geometry.window_ns


def test_refine_narrows_on_crowded_buckets():
    geometry = WheelGeometry(
        slot_ns_bits=12, num_slot_bits=10, fastest_link_gbps=10.0,
        time_scale=1.0,
    )
    crowded = {"max_bucket": 5_000, "cursor_jumps": 0, "slots_opened": 1_000}
    refined = refine_wheel_geometry(geometry, crowded)
    assert refined is not None
    assert refined.slot_ns_bits < geometry.slot_ns_bits


def test_refine_widens_on_sparse_jumpy_wheel():
    geometry = WheelGeometry(
        slot_ns_bits=8, num_slot_bits=10, fastest_link_gbps=10.0,
        time_scale=1.0,
    )
    sparse = {"max_bucket": 3, "cursor_jumps": 900, "slots_opened": 1_000}
    refined = refine_wheel_geometry(geometry, sparse)
    assert refined is not None
    assert refined.slot_ns_bits > geometry.slot_ns_bits


def test_refine_accepts_balanced_wheel():
    geometry = WheelGeometry(
        slot_ns_bits=12, num_slot_bits=10, fastest_link_gbps=10.0,
        time_scale=1.0,
    )
    balanced = {"max_bucket": 300, "cursor_jumps": 10, "slots_opened": 1_000}
    assert refine_wheel_geometry(geometry, balanced) is None


def test_refine_respects_clamps():
    at_floor = WheelGeometry(
        slot_ns_bits=MIN_SLOT_NS_BITS, num_slot_bits=10,
        fastest_link_gbps=10.0, time_scale=1.0,
    )
    crowded = {"max_bucket": 5_000, "cursor_jumps": 0, "slots_opened": 1_000}
    assert refine_wheel_geometry(at_floor, crowded) is None


def test_wheel_auto_records_geometry_in_result():
    config = dataclasses.replace(
        golden.golden_configs()[0], scheduler="wheel:auto"
    )
    result = run_experiment(config)
    info = result.scheduler_info
    assert info["name"] == "wheel:auto"
    expected = wheel_geometry_for(config.topology, config.time_scale)
    assert info["geometry"] == expected.to_dict()


def test_wheel_auto_matches_heap_records():
    """Autotuned geometry changes timer-wheel shape only — results must
    stay bit-identical to the heap engine."""
    config = golden.golden_configs()[0]
    heap = run_experiment(dataclasses.replace(config, scheduler="heap"))
    auto = run_experiment(dataclasses.replace(config, scheduler="wheel:auto"))
    assert heap.stats.records == auto.stats.records
    assert heap.events == auto.events
    assert heap.total_reroutes == auto.total_reroutes
