"""Golden regression: the reference grid's statistics are pinned.

The simulator is deterministic, so the reference grid (every factory
scheme x 2 loads) must reproduce the committed ``tests/golden/
reference_grid.json`` exactly.  Any event-ordering, accounting, or
timer change — intentional or not — lands here first.

After an *intentional* behaviour change, refresh with::

    PYTHONPATH=src python -m repro golden --refresh
"""

import os

from repro.validate import golden as golden_mod
from repro.validate.golden import (
    compare_reference,
    compute_reference,
    golden_configs,
    load_reference,
)

REFERENCE_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "reference_grid.json"
)


def test_reference_grid_is_committed():
    assert load_reference(REFERENCE_PATH) is not None, (
        "missing golden reference; generate it with "
        "PYTHONPATH=src python -m repro golden --refresh"
    )


def test_golden_zoo_matches_factory_registry():
    """Every scheme behind the factory has a golden row, in both the
    grid generator and the committed reference — a scheme cannot land
    without pinning its reference behaviour."""
    from repro.lb.factory import LB_REGISTRY

    assert set(golden_mod.GOLDEN_SCHEMES) == set(LB_REGISTRY), (
        "golden grid and factory registry drifted apart"
    )
    reference = load_reference(REFERENCE_PATH)
    assert reference is not None
    committed = {cell.split("@", 1)[0] for cell in reference["cells"]}
    assert committed == set(LB_REGISTRY), (
        "committed reference is missing schemes; refresh with "
        "PYTHONPATH=src python -m repro golden --refresh"
    )
    assert len(reference["cells"]) == len(LB_REGISTRY) * len(
        golden_mod.GOLDEN_LOADS
    )


def test_grid_configs_cover_schemes_and_loads():
    configs = golden_configs()
    assert len(configs) == len(golden_mod.GOLDEN_SCHEMES) * len(
        golden_mod.GOLDEN_LOADS
    )
    assert {config.lb for config in configs} == set(golden_mod.GOLDEN_SCHEMES)
    assert {config.load for config in configs} == set(golden_mod.GOLDEN_LOADS)


def test_reference_grid_matches_committed():
    expected = load_reference(REFERENCE_PATH)
    assert expected is not None
    actual = compute_reference()
    mismatches = compare_reference(expected, actual)
    assert not mismatches, (
        "golden grid drifted (refresh with 'python -m repro golden "
        "--refresh' if intentional):\n  " + "\n  ".join(mismatches)
    )


def test_compare_reference_reports_drift():
    expected = load_reference(REFERENCE_PATH)
    assert expected is not None
    tampered = {
        "cells": {
            cell: dict(values) for cell, values in expected["cells"].items()
        }
    }
    victim = sorted(tampered["cells"])[0]
    tampered["cells"][victim]["avg_fct_ms"] += 0.5
    del tampered["cells"][sorted(tampered["cells"])[-1]]
    mismatches = compare_reference(expected, tampered)
    assert any("avg_fct_ms" in line for line in mismatches)
    assert any("missing from computed grid" in line for line in mismatches)
