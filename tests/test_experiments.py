"""Integration tests for the experiment harness."""

import pytest

from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.report import format_table, gbps
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import (
    asymmetric_overrides,
    bench_topology,
    failure_bench_topology,
    simulation_topology,
    testbed_topology as make_testbed_topology,
)


def tiny_config(**overrides):
    defaults = dict(
        topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
        lb="ecmp",
        workload="web-search",
        load=0.4,
        n_flows=30,
        seed=1,
        size_scale=0.05,
        extra_drain_ns=2_000_000_000,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConfigValidation:
    def test_transport_checked(self):
        with pytest.raises(ValueError):
            tiny_config(transport="quic")

    def test_load_checked(self):
        with pytest.raises(ValueError):
            tiny_config(load=0.0)

    def test_failure_kind_checked(self):
        with pytest.raises(ValueError):
            FailureSpec(kind="meteor")

    def test_time_scale_checked(self):
        with pytest.raises(ValueError):
            tiny_config(time_scale=0)


class TestScenarios:
    def test_testbed_shape(self):
        cfg = make_testbed_topology()
        assert cfg.n_hosts == 12
        assert cfg.host_link_gbps == 1.0

    def test_testbed_asymmetric_cut(self):
        cfg = make_testbed_topology(asymmetric=True)
        assert cfg.link_rate_gbps(0, 3) == 0.0  # one uplink cut
        # Bisection drops to 75% of the symmetric case, as in the paper.
        assert cfg.fabric_capacity_bps() == 0.875 * make_testbed_topology().fabric_capacity_bps()

    def test_simulation_shape(self):
        cfg = simulation_topology()
        assert cfg.n_hosts == 128
        assert cfg.n_leaves == cfg.n_spines == 8

    def test_asymmetric_overrides_fraction(self):
        overrides = asymmetric_overrides(8, 8, 0.20, 2.0, seed=1)
        assert len(overrides) == 13  # round(0.2 * 64)
        assert all(v == 2.0 for v in overrides.values())

    def test_asymmetric_overrides_deterministic(self):
        assert asymmetric_overrides(4, 4, 0.2, 2.0, 5) == asymmetric_overrides(
            4, 4, 0.2, 2.0, 5
        )

    def test_failure_bench_is_1g(self):
        assert failure_bench_topology().host_link_gbps == 1.0


class TestRunner:
    def test_all_flows_finish_on_clean_fabric(self):
        result = run_experiment(tiny_config())
        assert result.stats.unfinished_count == 0
        assert result.stats.finished_count == 30
        assert result.mean_fct_ms > 0

    @pytest.mark.parametrize(
        "lb",
        ["ecmp", "presto", "drb", "letflow", "conga", "clove-ecn",
         "drill", "flowbender", "hermes"],
    )
    def test_every_scheme_completes(self, lb):
        kwargs = {}
        if lb in ("presto", "drb"):
            kwargs["reorder_mask_us"] = 100.0
        result = run_experiment(tiny_config(lb=lb, n_flows=20, **kwargs))
        assert result.stats.unfinished_count == 0

    def test_tcp_transport(self):
        result = run_experiment(tiny_config(transport="tcp", lb="hermes"))
        assert result.stats.unfinished_count == 0

    def test_deterministic_given_seed(self):
        a = run_experiment(tiny_config(seed=9))
        b = run_experiment(tiny_config(seed=9))
        assert a.mean_fct_ms == b.mean_fct_ms
        assert a.events == b.events

    def test_seeds_differ(self):
        a = run_experiment(tiny_config(seed=1))
        b = run_experiment(tiny_config(seed=2))
        assert a.mean_fct_ms != b.mean_fct_ms

    def test_visibility_sampling(self):
        result = run_experiment(tiny_config(visibility_sampling=True))
        assert result.visibility_switch_pair is not None
        assert result.visibility_host_pair is not None
        assert result.visibility_switch_pair >= result.visibility_host_pair

    def test_blackhole_leaves_ecmp_flows_unfinished(self):
        # All pairs leaf0->leaf1 blackholed on spine 0: ECMP flows hashed
        # there can never finish.
        config = tiny_config(
            n_flows=60,
            extra_drain_ns=300_000_000,
            failure=FailureSpec(
                kind="blackhole", spine=0, src_leaf=0, dst_leaf=1,
                pair_fraction=1.0,
            ),
        )
        result = run_experiment(config)
        assert result.stats.unfinished_count > 0
        penalized = result.mean_fct_ms_with_penalty()
        assert penalized > result.mean_fct_ms

    def test_hermes_finishes_through_blackhole(self):
        config = tiny_config(
            lb="hermes",
            n_flows=60,
            extra_drain_ns=2_000_000_000,
            failure=FailureSpec(
                kind="blackhole", spine=0, src_leaf=0, dst_leaf=1,
                pair_fraction=1.0,
            ),
        )
        result = run_experiment(config)
        assert result.stats.unfinished_count == 0

    def test_random_drop_inflates_fct(self):
        clean = run_experiment(tiny_config(seed=4))
        lossy = run_experiment(
            tiny_config(
                seed=4,
                failure=FailureSpec(kind="random_drop", spine=0, drop_rate=0.1),
            )
        )
        assert lossy.mean_fct_ms > clean.mean_fct_ms

    def test_reroute_counter_aggregated(self):
        result = run_experiment(tiny_config(lb="drb", n_flows=10))
        assert result.total_reroutes > 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bee"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_nan_rendered_as_dash(self):
        text = format_table(["x"], [[float("nan")]])
        assert "-" in text.splitlines()[2]

    def test_gbps(self):
        assert gbps(10e9) == 10.0
