"""Tests for the dynamic fault plane (:mod:`repro.faults`).

Four layers:

* **spec** — declarative validation (unknown actions, orphan reverts,
  flap parameters), the CLI string form, flap expansion;
* **mechanics** — admin-down / runtime-rate port semantics and the
  revocable failure handles, on live fabrics;
* **timeline** — applied/reverted records, tracer/audit mirroring;
* **acceptance** — the issue's two end-to-end contracts: a scheduled
  fault perturbs *nothing* outside its window (bit-identical per-flow
  records for flows that finished before it), and Hermes rides a
  link_down → link_up cycle with finite detection/recovery while ECMP on
  the same schedule strands flows in unrecovered timeouts.
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import config_key
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology
from repro.faults.plane import FaultSchedule
from repro.faults.spec import (
    FaultEventSpec,
    FaultScheduleSpec,
    blackhole_off,
    blackhole_on,
    flap,
    link_degrade,
    link_down,
    link_restore,
    link_up,
    parse_event,
    parse_schedule,
    parse_time,
    random_drop_start,
    random_drop_stop,
    schedule,
)
from repro.lb.factory import install_lb
from repro.transport.dctcp import DctcpFlow
from tests.conftest import make_fabric

MS = 1_000_000


# --------------------------------------------------------------------- #
# Spec validation
# --------------------------------------------------------------------- #


class TestSpecValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEventSpec("link_sideways", 0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultEventSpec("link_down", -1)

    def test_degrade_needs_positive_rate(self):
        with pytest.raises(ValueError, match="rate_gbps"):
            link_degrade(0, leaf=0, spine=0, rate_gbps=0.0)

    def test_blackhole_same_rack_rejected(self):
        with pytest.raises(ValueError, match="must differ"):
            blackhole_on(0, spine=0, src_leaf=1, dst_leaf=1)

    @pytest.mark.parametrize("duty", [0.0, 1.0, -0.5])
    def test_flap_duty_bounds(self, duty):
        with pytest.raises(ValueError, match="duty"):
            flap(0, leaf=0, spine=0, period_ns=1000, duty=duty, until_ns=5000)

    def test_flap_until_must_follow_start(self):
        with pytest.raises(ValueError, match="until_ns"):
            flap(5000, leaf=0, spine=0, period_ns=1000, until_ns=5000)

    def test_revert_without_apply_rejected(self):
        with pytest.raises(ValueError, match="no earlier matching apply"):
            schedule(link_up(10 * MS, leaf=0, spine=0))

    def test_revert_on_different_link_rejected(self):
        with pytest.raises(ValueError, match="no earlier matching apply"):
            schedule(
                link_down(1 * MS, leaf=0, spine=0),
                link_up(2 * MS, leaf=0, spine=1),
            )

    def test_flap_satisfies_a_trailing_link_up(self):
        # A flap always leaves the link up; a later explicit link_up is a
        # legal idempotent safety net, not an orphan revert.
        spec = schedule(
            flap(1 * MS, leaf=0, spine=0, period_ns=MS, until_ns=4 * MS),
            link_up(10 * MS, leaf=0, spine=0),
        )
        assert len(spec.events) == 2

    def test_span_includes_flap_until(self):
        spec = schedule(
            link_down(2 * MS, leaf=0, spine=0),
            flap(1 * MS, leaf=1, spine=1, period_ns=MS, until_ns=9 * MS),
            link_up(5 * MS, leaf=0, spine=0),
        )
        assert spec.span_ns == (1 * MS, 9 * MS)

    def test_spec_hashable_and_picklable(self):
        import pickle

        spec = schedule(
            link_down(1 * MS, leaf=0, spine=0),
            link_up(2 * MS, leaf=0, spine=0),
        )
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_empty_schedule_is_falsy(self):
        assert not FaultScheduleSpec(())
        assert schedule(link_down(0, leaf=0, spine=0))


class TestParsing:
    @pytest.mark.parametrize(
        "text,ns",
        [("5ms", 5 * MS), ("200us", 200_000), ("1.5s", 1_500_000_000),
         ("42ns", 42), ("1000", 1000)],
    )
    def test_parse_time_units(self, text, ns):
        assert parse_time(text) == ns

    def test_parse_time_garbage(self):
        with pytest.raises(ValueError, match="bad time literal"):
            parse_time("soon")

    def test_parse_event_full(self):
        event = parse_event("link_degrade@5ms:leaf=1,spine=2,gbps=2.5")
        assert event == link_degrade(5 * MS, leaf=1, spine=2, rate_gbps=2.5)

    def test_parse_event_flap_times(self):
        event = parse_event(
            "flap@2ms:leaf=0,spine=1,period=400us,duty=0.25,until=8ms"
        )
        assert event.period_ns == 400_000
        assert event.until_ns == 8 * MS
        assert event.duty == 0.25

    def test_parse_event_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault parameter"):
            parse_event("link_down@1ms:leaf=0,spline=1")

    def test_parse_schedule_matches_builders(self):
        parsed = parse_schedule(
            "link_down@5ms:leaf=0,spine=1; link_up@20ms:leaf=0,spine=1"
        )
        built = schedule(
            link_down(5 * MS, leaf=0, spine=1),
            link_up(20 * MS, leaf=0, spine=1),
        )
        assert parsed == built

    def test_parse_schedule_empty(self):
        with pytest.raises(ValueError, match="empty fault schedule"):
            parse_schedule(" ; ")


class TestFlapExpansion:
    def _plane(self, spec):
        fabric = make_fabric()
        return FaultSchedule(fabric, spec)

    def test_alternating_pairs_and_final_up(self):
        plane = self._plane(schedule(
            flap(10 * MS, leaf=0, spine=1, period_ns=4 * MS, duty=0.5,
                 until_ns=22 * MS)
        ))
        events = plane.expanded_events()
        actions = [e.action for e in events]
        assert actions == ["link_down", "link_up"] * 3
        assert [e.time_ns for e in events] == [
            10 * MS, 12 * MS, 14 * MS, 16 * MS, 18 * MS, 20 * MS
        ]
        assert all(e.leaf == 0 and e.spine == 1 for e in events)
        # Invariant: a flap can never leave the link dark.
        assert events[-1].action == "link_up"

    def test_duty_sets_down_fraction(self):
        plane = self._plane(schedule(
            flap(0, leaf=1, spine=0, period_ns=10 * MS, duty=0.3,
                 until_ns=10 * MS)
        ))
        events = plane.expanded_events()
        assert [e.time_ns for e in events] == [0, 3 * MS]

    def test_expansion_interleaves_with_plain_events(self):
        plane = self._plane(schedule(
            random_drop_start(1 * MS, spine=0, drop_rate=0.1),
            flap(0, leaf=0, spine=1, period_ns=2 * MS, until_ns=2 * MS),
            random_drop_stop(3 * MS, spine=0),
        ))
        times = [(e.time_ns, e.action) for e in plane.expanded_events()]
        assert times == [
            (0, "link_down"), (1 * MS, "random_drop_start"),
            (1 * MS, "link_up"), (3 * MS, "random_drop_stop"),
        ]


# --------------------------------------------------------------------- #
# Install-time target validation
# --------------------------------------------------------------------- #


class TestInstallValidation:
    def test_spine_out_of_range(self):
        fabric = make_fabric()  # 2x2
        plane = FaultSchedule(fabric, schedule(
            random_drop_start(0, spine=5, drop_rate=0.1)
        ))
        with pytest.raises(ValueError, match="outside the topology"):
            plane.install()

    def test_leaf_out_of_range(self):
        fabric = make_fabric()
        plane = FaultSchedule(fabric, schedule(link_down(0, leaf=7, spine=0)))
        with pytest.raises(ValueError, match="outside the topology"):
            plane.install()

    def test_statically_cut_link_rejected(self):
        fabric = make_fabric(link_overrides={(0, 1): 0.0})
        plane = FaultSchedule(fabric, schedule(
            link_down(0, leaf=0, spine=1), link_up(MS, leaf=0, spine=1)
        ))
        with pytest.raises(ValueError, match="cuts statically"):
            plane.install()

    def test_double_install_rejected(self):
        fabric = make_fabric()
        plane = FaultSchedule(
            fabric, schedule(link_down(0, leaf=0, spine=0))
        ).install()
        with pytest.raises(RuntimeError, match="already installed"):
            plane.install()


# --------------------------------------------------------------------- #
# Port mechanics: runtime rate changes and admin-down
# --------------------------------------------------------------------- #


class TestPortMechanics:
    def test_set_rate_changes_tx_time(self, fabric):
        port = fabric.topology.leaf_up[0][0]
        assert port.tx_time_ns(1500) == 1200  # 10 Gbps
        port.set_rate(1e9)
        assert port.tx_time_ns(1500) == 12000  # 1 Gbps
        port.set_rate(10e9)
        assert port.tx_time_ns(1500) == 1200  # cache cleared, not stale

    def test_set_rate_rejects_nonpositive(self, fabric):
        port = fabric.topology.leaf_up[0][0]
        with pytest.raises(ValueError):
            port.set_rate(0.0)

    def test_admin_down_drops_new_arrivals(self, fabric):
        from repro.net.packet import Packet, PacketKind

        port = fabric.topology.leaf_up[0][0]
        port.set_admin_down(True)
        packet = Packet(0, 0, 2, 0, 1500, PacketKind.DATA)
        assert port.enqueue(packet) is False
        assert port.drops_linkdown == 1
        assert port.total_drops == 1

    def test_admin_down_stalls_then_resumes(self, fabric):
        """Packets queued before the outage survive it and transmit after
        link_up — an admin-down loses arrivals, not backlog."""
        from repro.net.packet import Packet, PacketKind

        sim = fabric.sim
        arrived = []
        port = fabric.topology.leaf_up[0][0]
        port.forward = arrived.append
        for seq in range(3):
            port.enqueue(Packet(0, 0, 2, seq, 1500, PacketKind.DATA))
        sim.schedule_at(1_300, port.set_admin_down, True)  # after pkt 0 tx
        sim.schedule_at(500_000, port.set_admin_down, False)
        sim.run(until=2 * MS)
        assert len(arrived) == 3
        assert port.drops_linkdown == 0
        # Packets 1 and 2 were stalled across the outage window.
        assert sim.now > 500_000


class TestRevocableHandles:
    def test_uninstall_removes_predicates(self, fabric):
        import random

        from repro.net.failures import RandomDropFailure

        failure = RandomDropFailure(1.0, random.Random(0))
        failure.install(fabric.topology, 0)
        ports = fabric.topology.spine_ports(0)
        assert all(failure in p.drop_predicates for p in ports)
        assert failure.installed
        failure.uninstall()
        assert all(failure not in p.drop_predicates for p in ports)
        assert not failure.installed

    def test_uninstall_is_idempotent(self, fabric):
        from repro.net.failures import BlackholeFailure

        failure = BlackholeFailure([(0, 2)])
        failure.install(fabric.topology, 1)
        failure.uninstall()
        failure.uninstall()  # second call must not raise
        assert not failure.installed


# --------------------------------------------------------------------- #
# Live-fabric timeline mechanics
# --------------------------------------------------------------------- #


def _run_with_plane(spec, lb="ecmp", until=80 * MS, seed=1):
    # ~5.8 MB: several milliseconds of wire time, so every schedule
    # below lands inside the transfer, not after it.
    fabric = make_fabric(seed=seed)
    install_lb(fabric, lb)
    flow = DctcpFlow(fabric, 0, 2, 4000 * 1460)
    fabric.register_flow(flow)
    flow.start()
    plane = FaultSchedule(fabric, spec, fabric.rng.get("faults")).install()
    fabric.sim.run(until=until)
    return fabric, flow, plane


class TestTimeline:
    def test_down_up_records_phases_and_drops(self):
        # The outage must outlast the 10 ms RTO floor so retransmissions
        # actually fire into the dark links.
        fabric, flow, plane = _run_with_plane(schedule(
            link_down(1 * MS, leaf=0, spine=0),
            link_down(1 * MS, leaf=0, spine=1),
            link_up(25 * MS, leaf=0, spine=0),
            link_up(25 * MS, leaf=0, spine=1),
        ))
        assert flow.finished, "flow must recover once the links return"
        timeline = plane.timeline()
        assert [r["phase"] for r in timeline] == [
            "applied", "applied", "reverted", "reverted"
        ]
        assert plane.first_applied_ns() == 1 * MS
        assert plane.last_reverted_ns() == 25 * MS
        # With every uplink of leaf 0 dark, the sender's retransmissions
        # hit the no-carrier drop counter.
        total_linkdown = sum(
            r["detail"]["drops_while_down"]
            for r in timeline if r["action"] == "link_up"
        )
        assert total_linkdown > 0

    def test_degrade_restore_round_trips_rates(self):
        fabric, _, plane = _run_with_plane(schedule(
            link_degrade(1 * MS, leaf=0, spine=0, rate_gbps=1.0),
            link_restore(4 * MS, leaf=0, spine=0),
        ))
        up = fabric.topology.leaf_up[0][0]
        down = fabric.topology.spine_down[0][0]
        assert up.rate_bps == 10e9 and down.rate_bps == 10e9
        detail = plane.timeline()[0]["detail"]
        assert detail == {"from_gbps": 10.0, "to_gbps": 1.0}

    def test_drop_window_counts_and_uninstalls(self):
        fabric, flow, plane = _run_with_plane(schedule(
            random_drop_start(500_000, spine=0, drop_rate=1.0),
            random_drop_start(500_000, spine=1, drop_rate=1.0),
            random_drop_stop(4 * MS, spine=0),
            random_drop_stop(4 * MS, spine=1),
        ))
        assert plane.total_injected_drops() > 0
        assert flow.finished
        for spine in (0, 1):
            for port in fabric.topology.spine_ports(spine):
                assert not port.drop_predicates

    def test_blackhole_window_targets_pairs(self):
        fabric, flow, plane = _run_with_plane(schedule(
            blackhole_on(500_000, spine=0, src_leaf=0, dst_leaf=1,
                         fraction=1.0),
            blackhole_on(500_000, spine=1, src_leaf=0, dst_leaf=1,
                         fraction=1.0),
            blackhole_off(8 * MS, spine=0),
            blackhole_off(8 * MS, spine=1),
        ))
        assert plane.total_injected_drops() > 0
        assert flow.finished, "flow must complete once the blackhole lifts"
        on = [r for r in plane.timeline() if r["action"] == "blackhole_on"]
        # fraction=1.0 over a 2x2-host rack pair: all 4 (src, dst) pairs.
        assert all(r["detail"]["pairs"] == 4 for r in on)

    def test_revert_without_live_handle_is_noop(self):
        # blackhole_off after the handle was already swapped/stopped: the
        # schedule-level pairing check passes, the plane no-ops politely.
        fabric, _, plane = _run_with_plane(schedule(
            random_drop_start(1 * MS, spine=0, drop_rate=0.0),
            random_drop_stop(2 * MS, spine=0),
            random_drop_stop(3 * MS, spine=0),
        ))
        noops = [r for r in plane.timeline() if r["detail"].get("noop")]
        assert len(noops) == 1 and noops[0]["t"] == 3 * MS


# --------------------------------------------------------------------- #
# Failure-injection edge cases (satellite: net/failures.py)
# --------------------------------------------------------------------- #


class TestBlackholePairFractions:
    def test_fraction_zero_selects_nothing(self, fabric):
        import random

        from repro.net.failures import blackhole_pairs_between_racks

        pairs = blackhole_pairs_between_racks(
            fabric.topology, 0, 1, 0.0, random.Random(3)
        )
        assert pairs == set()

    def test_fraction_one_selects_every_pair(self, fabric):
        import random

        from repro.net.failures import blackhole_pairs_between_racks

        pairs = blackhole_pairs_between_racks(
            fabric.topology, 0, 1, 1.0, random.Random(3)
        )
        src = set(fabric.topology.hosts_of_leaf(0))
        dst = set(fabric.topology.hosts_of_leaf(1))
        assert pairs == {(s, d) for s in src for d in dst}

    def test_drop_counter_tracks_eaten_packets(self, fabric):
        import random

        from repro.net.failures import RandomDropFailure
        from repro.net.packet import Packet, PacketKind

        failure = RandomDropFailure(1.0, random.Random(0))
        failure.install(fabric.topology, 0)
        port = fabric.topology.spine_ports(0)[0]
        for seq in range(5):
            port.enqueue(Packet(0, 0, 2, seq, 1500, PacketKind.DATA))
        assert failure.dropped == 5
        assert port.drops_injected == 5

    def test_zero_rate_failure_is_bit_identical_to_no_failure(self):
        """The failure RNG is a dedicated stream: installing a 0%-drop
        failure consumes draws there but must not perturb workload or LB
        streams — per-flow records stay bit-identical."""
        from repro.experiments.config import FailureSpec

        base = ExperimentConfig(
            topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
            lb="hermes",
            workload="web-search",
            load=0.5,
            n_flows=30,
            seed=9,
            size_scale=0.05,
            time_scale=0.05,
        )
        with_noop = dataclasses.replace(
            base, failure=FailureSpec(kind="random_drop", spine=0,
                                      drop_rate=0.0)
        )
        plain = run_experiment(base)
        noop = run_experiment(with_noop)
        assert plain.stats.records == noop.stats.records
        assert plain.events == noop.events


# --------------------------------------------------------------------- #
# Config / cache-key integration
# --------------------------------------------------------------------- #


def _bench_config(**overrides):
    defaults = dict(
        topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
        lb="ecmp",
        workload="web-search",
        load=0.4,
        n_flows=20,
        seed=1,
        size_scale=0.05,
        time_scale=0.05,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestCacheKey:
    def test_faults_field_changes_key(self):
        plain = _bench_config()
        faulted = _bench_config(faults=schedule(
            link_down(1 * MS, leaf=0, spine=0),
            link_up(2 * MS, leaf=0, spine=0),
        ))
        assert config_key(plain) != config_key(faulted)

    def test_different_schedules_differ(self):
        a = _bench_config(faults=schedule(
            link_down(1 * MS, leaf=0, spine=0),
            link_up(2 * MS, leaf=0, spine=0),
        ))
        b = _bench_config(faults=schedule(
            link_down(1 * MS, leaf=0, spine=0),
            link_up(3 * MS, leaf=0, spine=0),
        ))
        assert config_key(a) != config_key(b)

    def test_identical_schedules_share_key(self):
        mk = lambda: _bench_config(faults=schedule(
            link_down(1 * MS, leaf=0, spine=0),
            link_up(2 * MS, leaf=0, spine=0),
        ))
        assert config_key(mk()) == config_key(mk())


class TestTelemetryIntegration:
    def test_fault_records_reach_tracer_and_audit(self):
        config = _bench_config(
            lb="hermes",
            trace=True,
            faults=schedule(
                link_down(1 * MS, leaf=0, spine=0),
                link_up(3 * MS, leaf=0, spine=0),
            ),
        )
        result = run_experiment(config)
        telemetry = result.telemetry
        assert telemetry is not None
        trace_faults = [
            r for r in telemetry.tracer.events if r.kind == "fault"
        ]
        assert [r.note for r in trace_faults] == [
            "link_down applied", "link_up reverted"
        ]
        audit_faults = [
            r for r in telemetry.audit.records if r.category == "fault"
        ]
        assert len(audit_faults) == 2
        assert audit_faults[0].detail["target"] == "leaf0<->spine0"
        # path_events must surface the fault context alongside per-path
        # decisions so why-left answers show what triggered the exodus.
        assert any(
            r.category == "fault" for r in telemetry.audit.path_events(0)
        )


# --------------------------------------------------------------------- #
# End-to-end acceptance
# --------------------------------------------------------------------- #


class TestAcceptance:
    def test_fault_window_is_bit_identical_outside(self):
        """Flows that finished before the first scheduled fault are
        bit-identical to the same run without the schedule: the fault
        plane is provably inert outside its window."""
        base = ExperimentConfig(
            topology=bench_topology(n_leaves=4, n_spines=4, hosts_per_leaf=3),
            lb="hermes",
            workload="web-search",
            load=0.4,
            n_flows=80,
            seed=5,
            extra_drain_ns=60 * MS,
        )
        start = 30 * MS
        faulted = dataclasses.replace(base, faults=schedule(
            link_down(start, leaf=0, spine=0),
            link_up(50 * MS, leaf=0, spine=0),
        ))
        plain = run_experiment(base)
        dynamic = run_experiment(faulted)
        before = lambda recs: sorted(
            (
                r for r in recs
                if r.fct_ns is not None and r.start_ns + r.fct_ns < start
            ),
            key=lambda r: r.flow_id,
        )
        plain_before = before(plain.stats.records)
        assert plain_before, "scenario must complete flows before the fault"
        assert plain_before == before(dynamic.stats.records)
        # And the schedule itself did leave a mark inside the window.
        assert dynamic.fault_timeline
        assert plain.stats.records != dynamic.stats.records

    def test_hermes_recovers_where_ecmp_strands_flows(self):
        """The paper's Fig. 16 contract on a link_down -> link_up cycle:
        Hermes detects the outage and drains the damage (finite
        detection and recovery, nothing stranded); ECMP, blind to path
        health, leaves flows hashed onto the dark link timing out
        forever."""
        def run(lb):
            return run_experiment(ExperimentConfig(
                topology=bench_topology(
                    n_leaves=4, n_spines=4, hosts_per_leaf=3
                ),
                lb=lb,
                workload="web-search",
                load=0.5,
                n_flows=100,
                seed=2,
                extra_drain_ns=40 * MS,
                faults=schedule(
                    link_down(20 * MS, leaf=0, spine=0),
                    link_up(55 * MS, leaf=0, spine=0),
                ),
            ))

        hermes = run("hermes")
        assert hermes.detection_ns is not None
        assert hermes.recovery_ns is not None
        assert hermes.unrecovered_timeouts == 0

        ecmp = run("ecmp")
        assert ecmp.unrecovered_timeouts > 0
        assert ecmp.recovery_ns is None
        assert ecmp.detection_ns is None, "ECMP has no failure detector"

        # The timeline is part of both results, applied before reverted.
        for result in (hermes, ecmp):
            phases = [r["phase"] for r in result.fault_timeline]
            assert phases == ["applied", "reverted"]
