"""Unit tests for seeded random streams."""

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_same_stream(self):
        streams = RngStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_different_names_different_sequences(self):
        streams = RngStreams(1)
        a = [streams.get("a").random() for _ in range(10)]
        b = [streams.get("b").random() for _ in range(10)]
        assert a != b

    def test_reproducible_across_instances(self):
        first = [RngStreams(42).get("x").random() for _ in range(5)]
        second = [RngStreams(42).get("x").random() for _ in range(5)]
        assert first == second

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x").random()
        b = RngStreams(2).get("x").random()
        assert a != b

    def test_stream_isolation(self):
        """Draining one stream must not perturb another."""
        reference_streams = RngStreams(7)
        ref = [reference_streams.get("b").random() for _ in range(5)]
        streams = RngStreams(7)
        for _ in range(1000):
            streams.get("a").random()
        assert [streams.get("b").random() for _ in range(5)] == ref

    def test_spawn_indexed_streams(self):
        streams = RngStreams(3)
        assert streams.spawn("host", 0) is streams.get("host:0")
        a = streams.spawn("host", 1).random()
        b = streams.spawn("host", 2).random()
        assert a != b
