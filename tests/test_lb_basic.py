"""Unit tests for ECMP, Presto*/DRB, LetFlow and the factory."""

import pytest

from repro.lb.ecmp import EcmpLB
from repro.lb.factory import LB_REGISTRY, install_lb
from repro.lb.letflow import LetFlowLB
from repro.lb.presto import DrbLB, PrestoLB
from repro.transport.tcp import MSS, TcpFlow
from tests.conftest import make_fabric


def fresh_flow(fabric, src=0, dst=2, size=100 * MSS, flow_id=None):
    return TcpFlow(fabric, src, dst, size)


class TestFactory:
    def test_unknown_scheme_rejected(self, fabric):
        with pytest.raises(ValueError, match="unknown load balancer"):
            install_lb(fabric, "nope")

    def test_all_registered_schemes_install(self):
        for name in LB_REGISTRY:
            fabric = make_fabric()
            install_lb(fabric, name)
            assert all(h.lb is not None for h in fabric.hosts)
            assert all(h.lb.name == name for h in fabric.hosts)

    def test_conga_shares_leaf_state(self, fabric):
        shared = install_lb(fabric, "conga")
        assert fabric.hosts[0].lb.leaf_state is fabric.hosts[1].lb.leaf_state
        assert fabric.hosts[0].lb.leaf_state is shared["leaf_states"][0]
        assert fabric.hosts[2].lb.leaf_state is not fabric.hosts[0].lb.leaf_state

    def test_hermes_install_returns_probers(self, fabric):
        shared = install_lb(fabric, "hermes")
        assert set(shared["probers"]) == {0, 1}
        assert shared["params"].t_rtt_high_ns is not None


class TestEcmp:
    def test_flow_sticks_to_one_path(self, fabric):
        install_lb(fabric, "ecmp")
        agent = fabric.hosts[0].lb
        flow = fresh_flow(fabric)
        first = agent.select_path(flow, 1500)
        flow.current_path = first
        for _ in range(20):
            assert agent.select_path(flow, 1500) == first

    def test_different_flows_spread(self, fabric):
        install_lb(fabric, "ecmp")
        agent = fabric.hosts[0].lb
        paths = {agent.select_path(fresh_flow(fabric), 1500) for _ in range(64)}
        assert paths == {0, 1}

    def test_hash_deterministic(self):
        picks = []
        for _ in range(2):
            fabric = make_fabric(seed=9)
            install_lb(fabric, "ecmp")
            flow = TcpFlow(fabric, 0, 2, MSS)
            picks.append(fabric.hosts[0].lb.select_path(flow, 1500))
        assert picks[0] == picks[1]

    def test_never_reroutes(self, fabric):
        install_lb(fabric, "ecmp")
        agent = fabric.hosts[0].lb
        flow = fresh_flow(fabric)
        flow.current_path = agent.select_path(flow, 1500)
        for _ in range(50):
            agent.select_path(flow, 1500)
        assert agent.reroutes == 0


class TestPresto:
    def test_path_changes_every_flowcell(self, fabric):
        install_lb(fabric, "presto", flowcell_bytes=3_000)
        agent = fabric.hosts[0].lb
        flow = fresh_flow(fabric)
        picks = [agent.select_path(flow, 1500) for _ in range(6)]
        # 3000-byte cells of 1500-byte packets: pairs share a path.
        assert picks[0] == picks[1]
        assert picks[2] == picks[3]
        assert picks[1] != picks[2]

    def test_round_robin_alternates(self, fabric):
        install_lb(fabric, "presto", flowcell_bytes=1)
        agent = fabric.hosts[0].lb
        flow = fresh_flow(fabric)
        picks = [agent.select_path(flow, 1500) for _ in range(4)]
        assert picks[0] != picks[1]
        assert picks[0] == picks[2]

    def test_invalid_flowcell_rejected(self, fabric):
        with pytest.raises(ValueError):
            PrestoLB(fabric.hosts[0], fabric, fabric.rng.get("t"), flowcell_bytes=0)

    def test_capacity_weights(self):
        fabric = make_fabric(link_overrides={(0, 1): 5.0})
        install_lb(fabric, "presto", flowcell_bytes=1, weight_by_capacity=True)
        agent = fabric.hosts[0].lb
        flow = fresh_flow(fabric)
        picks = [agent.select_path(flow, 1500) for _ in range(30)]
        # Path 0 (10G) should carry ~2x the packets of path 1 (5G).
        assert picks.count(0) == 2 * picks.count(1)

    def test_flow_state_cleaned_up(self, fabric):
        install_lb(fabric, "presto")
        agent = fabric.hosts[0].lb
        flow = fresh_flow(fabric)
        agent.select_path(flow, 1500)
        agent.on_flow_done(flow)
        assert flow.flow_id not in agent._cell


class TestDrb:
    def test_drb_sprays_per_packet(self, fabric):
        install_lb(fabric, "drb")
        agent = fabric.hosts[0].lb
        assert isinstance(agent, DrbLB)
        flow = fresh_flow(fabric)
        picks = [agent.select_path(flow, 1500) for _ in range(4)]
        assert picks[0] != picks[1]


class TestLetFlow:
    def test_invalid_timeout_rejected(self, fabric):
        with pytest.raises(ValueError):
            LetFlowLB(fabric.hosts[0], fabric, fabric.rng.get("t"),
                      flowlet_timeout_ns=0)

    def test_path_stable_within_flowlet(self, fabric):
        install_lb(fabric, "letflow", flowlet_timeout_ns=100_000)
        agent = fabric.hosts[0].lb
        flow = fresh_flow(fabric)
        first = agent.select_path(flow, 1500)
        flow.last_tx_time = fabric.sim.now  # packet just went out
        assert agent.select_path(flow, 1500) == first

    def test_gap_creates_new_flowlet(self, fabric):
        install_lb(fabric, "letflow", flowlet_timeout_ns=100_000)
        agent = fabric.hosts[0].lb
        flow = fresh_flow(fabric)
        agent.select_path(flow, 1500)
        flow.last_tx_time = fabric.sim.now
        before = agent.flowlets
        fabric.sim.run(until=fabric.sim.now + 200_000)  # > timeout gap
        agent.select_path(flow, 1500)
        assert agent.flowlets == before + 1

    def test_random_spread_over_flowlets(self, fabric):
        install_lb(fabric, "letflow", flowlet_timeout_ns=10)
        agent = fabric.hosts[0].lb
        flow = fresh_flow(fabric)
        picks = set()
        for _ in range(40):
            picks.add(agent.select_path(flow, 1500))
            flow.last_tx_time = fabric.sim.now
            fabric.sim.run(until=fabric.sim.now + 100)
        assert picks == {0, 1}
