"""Unit tests for failure injection."""

import random

import pytest

from repro.net.failures import (
    BlackholeFailure,
    RandomDropFailure,
    blackhole_pairs_between_racks,
)
from repro.net.packet import Packet, PacketKind
from tests.conftest import make_fabric


def packet(src=0, dst=2):
    return Packet(0, src, dst, 0, 1500, PacketKind.DATA, path_id=0)


class TestRandomDrop:
    def test_rate_validated(self):
        with pytest.raises(ValueError):
            RandomDropFailure(1.5, random.Random(0))

    def test_zero_rate_never_drops(self):
        failure = RandomDropFailure(0.0, random.Random(0))
        assert not any(failure(packet(), 0) for _ in range(1000))

    def test_one_rate_always_drops(self):
        failure = RandomDropFailure(1.0, random.Random(0))
        assert all(failure(packet(), 0) for _ in range(100))

    def test_empirical_rate(self):
        failure = RandomDropFailure(0.02, random.Random(1))
        drops = sum(failure(packet(), 0) for _ in range(20_000))
        assert 300 < drops < 500  # 2% of 20k = 400

    def test_drop_counter(self):
        failure = RandomDropFailure(1.0, random.Random(0))
        failure(packet(), 0)
        failure(packet(), 0)
        assert failure.dropped == 2

    def test_install_attaches_to_all_spine_downlinks(self):
        fabric = make_fabric()
        failure = RandomDropFailure(1.0, random.Random(0))
        failure.install(fabric.topology, 0)
        for port in fabric.topology.spine_ports(0):
            assert failure in port.drop_predicates
        for port in fabric.topology.spine_ports(1):
            assert failure not in port.drop_predicates

    def test_installed_failure_drops_traffic_through_spine(self):
        fabric = make_fabric()
        failure = RandomDropFailure(1.0, random.Random(0))
        failure.install(fabric.topology, 0)
        fabric.send(packet())  # path 0 goes through spine 0
        fabric.sim.run()
        assert failure.dropped == 1


class TestBlackhole:
    def test_matching_pair_dropped_deterministically(self):
        failure = BlackholeFailure([(0, 2)])
        assert all(failure(packet(0, 2), 0) for _ in range(10))

    def test_non_matching_pair_passes(self):
        failure = BlackholeFailure([(0, 2)])
        assert not failure(packet(1, 2), 0)
        assert not failure(packet(2, 0), 0)  # direction matters

    def test_pairs_between_racks_fraction(self):
        fabric = make_fabric()
        pairs = blackhole_pairs_between_racks(
            fabric.topology, 0, 1, 0.5, random.Random(0)
        )
        assert len(pairs) == 2  # 2x2 host pairs, half
        for src, dst in pairs:
            assert fabric.topology.leaf_of(src) == 0
            assert fabric.topology.leaf_of(dst) == 1

    def test_pairs_fraction_validated(self):
        fabric = make_fabric()
        with pytest.raises(ValueError):
            blackhole_pairs_between_racks(
                fabric.topology, 0, 1, 1.5, random.Random(0)
            )

    def test_full_fraction_covers_all_pairs(self):
        fabric = make_fabric()
        pairs = blackhole_pairs_between_racks(
            fabric.topology, 0, 1, 1.0, random.Random(0)
        )
        assert len(pairs) == 4
