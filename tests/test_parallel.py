"""Tests for parallel grid execution and the on-disk result cache.

The contracts under test (see ``repro/experiments/parallel.py``):
determinism (parallel == serial, bit for bit), cache identity (a hit
returns exactly what the miss computed), cache-key sensitivity (any
config change means a different key), and cross-process RNG independence
(worker processes cannot perturb each other's seeded streams).
"""

import dataclasses
import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments import parallel
from repro.experiments.config import ExperimentConfig, FailureSpec
from repro.experiments.parallel import (
    ResultCache,
    ResultSummary,
    cell_timeout,
    config_key,
    resolve_jobs,
    run_cell,
    run_cells,
)
from repro.faults.spec import link_down, link_up, schedule
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology
from repro.sim.rng import RngStreams


def tiny_config(**overrides):
    defaults = dict(
        topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
        lb="ecmp",
        workload="web-search",
        load=0.4,
        n_flows=25,
        seed=1,
        size_scale=0.05,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def tiny_grid():
    return [
        tiny_config(lb=lb, seed=seed)
        for lb in ("ecmp", "letflow")
        for seed in (1, 2)
    ]


def _summaries_equal(a: ResultSummary, b: ResultSummary) -> bool:
    return (
        a.stats.records == b.stats.records
        and a.sim_time_ns == b.sim_time_ns
        and a.events == b.events
        and a.total_reroutes == b.total_reroutes
        and a.visibility_switch_pair == b.visibility_switch_pair
        and a.visibility_host_pair == b.visibility_host_pair
    )


def _rng_draws(seed: int):
    """Worker helper: a deterministic sample from two named streams.
    Module-level so the process pool can pickle it by reference."""
    streams = RngStreams(seed)
    return (
        [streams.get("workload").random() for _ in range(5)],
        [streams.get("letflow").random() for _ in range(5)],
    )


class TestDeterminism:
    def test_parallel_bit_identical_to_serial(self):
        grid = tiny_grid()
        serial = run_cells(grid, jobs=1, use_cache=False)
        parallel_ = run_cells(grid, jobs=2, use_cache=False)
        for s, p in zip(serial, parallel_):
            assert s.stats.records == p.stats.records  # per-flow FCTs
            assert _summaries_equal(s, p)

    def test_summary_matches_in_process_run(self):
        config = tiny_config(seed=7)
        direct = run_experiment(config)
        summary = run_cells([config], jobs=2, use_cache=False)[0]
        assert summary.stats.records == direct.stats.records
        assert summary.events == direct.events
        assert summary.sim_time_ns == direct.sim_time_ns

    def test_results_in_input_order(self):
        grid = tiny_grid()
        results = run_cells(grid, jobs=2, use_cache=False)
        for config, summary in zip(grid, results):
            assert summary.config.lb == config.lb
            assert summary.config.seed == config.seed

    def test_summary_is_picklable(self):
        summary = run_cell(tiny_config(), use_cache=False)
        clone = pickle.loads(pickle.dumps(summary))
        assert _summaries_equal(summary, clone)


class TestCache:
    def test_hit_returns_identical_summary(self, tmp_path):
        config = tiny_config(seed=3)
        cold = run_cell(config, cache_dir=str(tmp_path))
        warm = run_cell(config, cache_dir=str(tmp_path))
        assert _summaries_equal(cold, warm)

    def test_hit_skips_simulation(self, tmp_path, monkeypatch):
        grid = tiny_grid()
        run_cells(grid, jobs=1, cache_dir=str(tmp_path))

        def boom(config):
            raise AssertionError("cache miss: simulation re-ran")

        monkeypatch.setattr(parallel, "_run_cell", boom)
        run_cells(grid, jobs=1, cache_dir=str(tmp_path))  # must not raise

    def test_disabled_cache_writes_nothing(self, tmp_path):
        run_cell(tiny_config(), use_cache=False, cache_dir=str(tmp_path))
        assert ResultCache(str(tmp_path)).size() == 0

    @pytest.mark.parametrize(
        "garbage",
        [b"not a pickle", b"garbage\n", b"", b"\x80\x05"],
        ids=["text", "pickle-opcode-prefix", "empty", "truncated"],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        config = tiny_config()
        cache = ResultCache(str(tmp_path))
        cold = run_cell(config, cache_dir=str(tmp_path))
        path = cache._path(config_key(config))
        with open(path, "wb") as fh:
            fh.write(garbage)
        again = run_cell(config, cache_dir=str(tmp_path))
        assert _summaries_equal(cold, again)

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_cell(tiny_config(), cache_dir=str(tmp_path))
        assert cache.size() == 1
        assert cache.clear() == 1
        assert cache.size() == 0

    def test_visibility_fields_survive_the_cache(self, tmp_path):
        config = tiny_config(visibility_sampling=True)
        cold = run_cell(config, cache_dir=str(tmp_path))
        warm = run_cell(config, cache_dir=str(tmp_path))
        assert cold.visibility_switch_pair is not None
        assert warm.visibility_switch_pair == cold.visibility_switch_pair
        assert warm.visibility_host_pair == cold.visibility_host_pair


class TestCachePrune:
    @staticmethod
    def _plant(cache, name, n_bytes, mtime):
        path = os.path.join(cache.directory, f"{name}.pkl")
        with open(path, "wb") as fh:
            fh.write(b"\0" * n_bytes)
        os.utime(path, (mtime, mtime))
        return path

    def test_total_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.total_bytes() == 0
        self._plant(cache, "a", 100, 1_000.0)
        self._plant(cache, "b", 250, 2_000.0)
        assert cache.total_bytes() == 350

    def test_prune_by_age(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._plant(cache, "old", 100, 1_000.0)
        self._plant(cache, "new", 200, 9_000.0)
        removed, reclaimed = cache.prune(max_age_s=5_000.0, now=10_000.0)
        assert (removed, reclaimed) == (1, 100)
        assert cache.size() == 1
        assert cache.total_bytes() == 200

    def test_prune_by_size_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._plant(cache, "oldest", 100, 1_000.0)
        self._plant(cache, "middle", 100, 2_000.0)
        self._plant(cache, "newest", 100, 3_000.0)
        removed, reclaimed = cache.prune(max_bytes=150)
        assert (removed, reclaimed) == (2, 200)
        survivors = [n for n in os.listdir(str(tmp_path)) if n.endswith(".pkl")]
        assert survivors == ["newest.pkl"]

    def test_prune_both_policies(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._plant(cache, "stale", 50, 1_000.0)
        self._plant(cache, "big", 400, 8_000.0)
        self._plant(cache, "keep", 100, 9_000.0)
        removed, reclaimed = cache.prune(
            max_bytes=100, max_age_s=5_000.0, now=10_000.0
        )
        assert (removed, reclaimed) == (2, 450)
        survivors = [n for n in os.listdir(str(tmp_path)) if n.endswith(".pkl")]
        assert survivors == ["keep.pkl"]

    def test_prune_noop_within_budget(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._plant(cache, "a", 100, 9_000.0)
        assert cache.prune(max_bytes=1_000, max_age_s=10_000.0, now=9_500.0) == (
            0,
            0,
        )
        assert cache.size() == 1

    def test_prune_real_entries_then_rerun_repopulates(self, tmp_path):
        config = tiny_config(seed=5)
        cache = ResultCache(str(tmp_path))
        cold = run_cell(config, cache_dir=str(tmp_path))
        assert cache.total_bytes() > 0
        removed, reclaimed = cache.prune(max_bytes=0)
        assert removed == 1 and reclaimed > 0
        assert cache.size() == 0
        warm = run_cell(config, cache_dir=str(tmp_path))
        assert _summaries_equal(cold, warm)
        assert cache.size() == 1


class TestCacheKey:
    def test_stable_across_identical_configs(self):
        assert config_key(tiny_config()) == config_key(tiny_config())

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 2},
            {"load": 0.5},
            {"n_flows": 26},
            {"lb": "letflow"},
            {"workload": "data-mining"},
            {"size_scale": 0.06},
            {"time_scale": 0.5},
            {"transport": "tcp"},
            {"dupthresh": 4},
            {"reorder_mask_us": 100.0},
            {"lb_params": {"flowlet_timeout_ns": 123}},
            {"hermes_overrides": {"probing_enabled": False}},
            {"extra_drain_ns": 1_000_000_000},
            {"visibility_sampling": True},
            {"failure": FailureSpec(kind="random_drop", drop_rate=0.01)},
            {
                "faults": schedule(
                    link_down(1_000_000, leaf=0, spine=0),
                    link_up(2_000_000, leaf=0, spine=0),
                )
            },
            {
                "topology": bench_topology(
                    n_leaves=2, n_spines=2, hosts_per_leaf=3
                )
            },
        ],
        ids=lambda change: next(iter(change)),
    )
    def test_any_field_change_changes_key(self, change):
        assert config_key(tiny_config(**change)) != config_key(tiny_config())

    def test_dict_order_does_not_change_key(self):
        a = tiny_config(lb_params={"a": 1, "b": 2})
        b = tiny_config(lb_params={"b": 2, "a": 1})
        assert config_key(a) == config_key(b)

    def test_key_embeds_code_version(self):
        assert config_key(tiny_config()).endswith(parallel.code_version())


class TestRngAcrossProcesses:
    def test_worker_streams_match_in_process_streams(self):
        seeds = [1, 2, 3, 4]
        with ProcessPoolExecutor(max_workers=2) as pool:
            worker = list(pool.map(_rng_draws, seeds))
        local = [_rng_draws(seed) for seed in seeds]
        assert worker == local

    def test_streams_independent_across_seeds(self):
        a, b = _rng_draws(1), _rng_draws(2)
        assert a[0] != b[0]
        assert a[1] != b[1]

    def test_named_streams_independent_of_each_other(self):
        workload, letflow = _rng_draws(1)
        assert workload != letflow


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestCellTimeoutParsing:
    def test_unset_means_no_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_TIMEOUT", raising=False)
        assert cell_timeout() is None

    def test_seconds_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
        assert cell_timeout() == 2.5

    @pytest.mark.parametrize("bad", ["soon", "-1", "0"])
    def test_garbage_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", bad)
        with pytest.raises(ValueError):
            cell_timeout()


class TestCrashTolerance:
    """A worker dying mid-cell (simulated with the ``REPRO_TEST_*``
    hooks, which only fire inside pool workers) must cost the grid
    nothing: the pool restarts, the poisoned cells re-run serially
    in-process, and every result matches a plain serial run."""

    def test_worker_crash_reruns_cell(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CRASH_SEED", "2")
        grid = tiny_grid()  # two cells carry seed 2 and kill their worker
        results = run_cells(grid, jobs=2, use_cache=False)
        assert all(r.error is None for r in results)
        monkeypatch.delenv("REPRO_TEST_CRASH_SEED")
        serial = run_cells(grid, jobs=1, use_cache=False)
        assert all(map(_summaries_equal, results, serial))

    def test_hung_cell_marked_failed_with_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SLEEP", "2:30")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2")
        configs = [tiny_config(seed=seed) for seed in (1, 2, 3)]
        results = run_cells(configs, jobs=2, use_cache=False)
        assert results[1].error is not None
        assert "REPRO_CELL_TIMEOUT=2" in results[1].error
        assert results[1].stats.records == []
        for healthy in (results[0], results[2]):
            assert healthy.error is None
            assert healthy.stats.records

    def test_failed_cells_never_cached(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TEST_SLEEP", "2:30")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2")
        configs = [tiny_config(seed=seed) for seed in (1, 2, 3)]
        run_cells(configs, jobs=2, cache_dir=str(tmp_path))
        cache = ResultCache(str(tmp_path))
        assert cache.size() == 2
        assert cache.get(configs[1]) is None


class TestCacheSelfHealing:
    def _poison(self, cache, config):
        path = cache._path(config_key(config))
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        return path

    def test_corrupt_entry_deleted_and_counted(self, tmp_path):
        config = tiny_config()
        cache = ResultCache(str(tmp_path))
        run_cell(config, cache_dir=str(tmp_path))
        path = self._poison(cache, config)
        assert cache.get(config) is None  # decode failure -> miss
        assert not os.path.exists(path), "corrupt entry must be evicted"
        assert cache.corruption_count() == 1
        # The next lookup is a clean miss, not another decode failure.
        assert cache.get(config) is None
        assert cache.corruption_count() == 1

    def test_healed_entry_recaches(self, tmp_path):
        config = tiny_config()
        cache = ResultCache(str(tmp_path))
        cold = run_cell(config, cache_dir=str(tmp_path))
        self._poison(cache, config)
        again = run_cell(config, cache_dir=str(tmp_path))  # heals + refills
        assert _summaries_equal(cold, again)
        assert cache.corruption_count() == 1
        assert cache.get(config) is not None

    def test_clear_resets_corruption_ledger(self, tmp_path):
        config = tiny_config()
        cache = ResultCache(str(tmp_path))
        run_cell(config, cache_dir=str(tmp_path))
        self._poison(cache, config)
        cache.get(config)
        assert cache.corruption_count() == 1
        cache.clear()
        assert cache.corruption_count() == 0

    def test_fresh_directory_counts_zero(self, tmp_path):
        assert ResultCache(str(tmp_path)).corruption_count() == 0
