"""Property tests for the mergeable streaming-statistics layer.

The t-digest's contract — <1% relative error at p50/p99, exactly
commutative merges, bit-identical serialization round-trips — is what
lets million-flow cells report percentiles from O(centroids) state.
These tests pin that contract across distribution shapes (uniform,
heavy-tailed, bimodal) and seeds, because an estimator that is only
accurate on friendly data is worse than none.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.metrics.fct import percentile
from repro.telemetry.digest import ReservoirSampler, TDigest


def _uniform(rng, n):
    return [rng.uniform(0.0, 1e6) for _ in range(n)]


def _heavy_tailed(rng, n):
    # Lognormal with a fat tail — the shape FCT distributions take.
    return [rng.lognormvariate(12.0, 1.8) for _ in range(n)]


def _bimodal(rng, n):
    # Mice and elephants: two tight modes three decades apart.
    return [
        rng.gauss(1e3, 50.0) if rng.random() < 0.7 else rng.gauss(1e6, 2e4)
        for _ in range(n)
    ]


DISTRIBUTIONS = {
    "uniform": _uniform,
    "heavy_tailed": _heavy_tailed,
    "bimodal": _bimodal,
}


def _rel_err(estimate: float, truth: float) -> float:
    return abs(estimate - truth) / max(1e-12, abs(truth))


class TestTDigestAccuracy:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    @pytest.mark.parametrize("seed", [1, 7])
    def test_p50_p99_within_one_percent(self, name, seed):
        rng = random.Random(seed)
        values = DISTRIBUTIONS[name](rng, 50_000)
        digest = TDigest()
        digest.extend(values)
        ordered = sorted(values)
        for q in (50.0, 99.0):
            truth = percentile(ordered, q)
            assert _rel_err(digest.quantile(q / 100.0), truth) < 0.01, (
                f"{name} p{q:g} off by more than 1%"
            )

    def test_extremes_exact(self):
        rng = random.Random(3)
        values = _heavy_tailed(rng, 10_000)
        digest = TDigest()
        digest.extend(values)
        assert digest.quantile(0.0) == min(values)
        assert digest.quantile(1.0) == max(values)
        assert digest.min == min(values)
        assert digest.max == max(values)

    def test_memory_bounded(self):
        digest = TDigest(compression=100)
        rng = random.Random(5)
        for _ in range(200_000):
            digest.add(rng.random())
        # Centroids + buffer stay O(compression) no matter the stream.
        assert digest.memory_items() < 100 * 6
        assert digest.count == 200_000

    def test_cdf_inverts_quantile(self):
        rng = random.Random(11)
        digest = TDigest()
        digest.extend(_uniform(rng, 20_000))
        for q in (0.1, 0.5, 0.9, 0.99):
            value = digest.quantile(q)
            assert abs(digest.cdf(value) - q) < 0.01

    def test_rejects_bad_input(self):
        digest = TDigest()
        with pytest.raises(ValueError):
            digest.add(float("nan"))
        with pytest.raises(ValueError):
            digest.add(1.0, weight=0.0)
        with pytest.raises(ValueError):
            digest.quantile(1.5)
        with pytest.raises(ValueError):
            TDigest(compression=5)
        with pytest.raises(ValueError):
            TDigest().quantile(0.5)  # empty


class TestTDigestMerge:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_merged_exactly_commutative(self, name):
        rng = random.Random(19)
        a, b = TDigest(), TDigest()
        a.extend(DISTRIBUTIONS[name](rng, 5_000))
        b.extend(DISTRIBUTIONS[name](rng, 3_000))
        assert a.merged(b).to_dict() == b.merged(a).to_dict()

    def test_merge_associative_within_resolution(self):
        """(a+b)+c vs a+(b+c): centroid means may differ slightly, but
        quantiles must agree to well under the accuracy budget."""
        rng = random.Random(23)
        parts = [TDigest() for _ in range(3)]
        for part in parts:
            part.extend(_heavy_tailed(rng, 4_000))
        a, b, c = parts
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        assert left.count == pytest.approx(right.count)
        for q in (0.5, 0.99):
            assert _rel_err(left.quantile(q), right.quantile(q)) < 0.005

    def test_merge_matches_single_stream(self):
        """Sharded ingestion must estimate like single-stream ingestion
        — the property parallel workers rely on."""
        rng = random.Random(29)
        values = _heavy_tailed(rng, 30_000)
        whole = TDigest()
        whole.extend(values)
        shards = [TDigest() for _ in range(4)]
        for i, value in enumerate(values):
            shards[i % 4].add(value)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        assert merged.count == pytest.approx(whole.count)
        ordered = sorted(values)
        for q in (50.0, 99.0):
            truth = percentile(ordered, q)
            assert _rel_err(merged.quantile(q / 100.0), truth) < 0.01

    def test_merge_empty_is_identity(self):
        digest = TDigest()
        digest.extend([1.0, 2.0, 3.0])
        before = digest.to_dict()
        digest.merge(TDigest())
        assert digest.to_dict() == before


class TestTDigestSerialization:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_round_trip_bit_identical(self, name):
        rng = random.Random(31)
        digest = TDigest()
        digest.extend(DISTRIBUTIONS[name](rng, 10_000))
        # Through actual JSON text, not just dicts: floats must survive
        # the repr round-trip, and the doc must be deterministic.
        text = json.dumps(digest.to_dict(), sort_keys=True)
        restored = TDigest.from_dict(json.loads(text))
        assert restored.to_dict() == digest.to_dict()
        assert json.dumps(restored.to_dict(), sort_keys=True) == text
        for q in (0.5, 0.99):
            assert restored.quantile(q) == digest.quantile(q)

    def test_replay_deterministic(self):
        """Same stream, same order → bit-identical centroids."""
        rng = random.Random(37)
        values = _bimodal(rng, 8_000)
        a, b = TDigest(), TDigest()
        a.extend(values)
        b.extend(values)
        assert a.to_dict() == b.to_dict()

    def test_empty_round_trip(self):
        restored = TDigest.from_dict(TDigest().to_dict())
        assert restored.count == 0


class TestReservoirSampler:
    def test_exact_below_capacity(self):
        sampler = ReservoirSampler(capacity=100, seed=1)
        values = [float(i) for i in range(50)]
        for value in values:
            sampler.add(value)
        assert sampler.exact
        assert sampler.quantile(0.5) == percentile(sorted(values), 50.0)

    def test_uniformity_above_capacity(self):
        """Algorithm R keeps an unbiased sample: the sample mean of a
        uniform stream lands near the stream mean."""
        rng = random.Random(41)
        sampler = ReservoirSampler(capacity=2_000, seed=7)
        for _ in range(100_000):
            sampler.add(rng.uniform(0.0, 1.0))
        assert not sampler.exact
        assert len(sampler.sample) == 2_000
        mean = sum(sampler.sample) / len(sampler.sample)
        assert abs(mean - 0.5) < 0.03

    def test_deterministic_and_serializable(self):
        a = ReservoirSampler(capacity=64, seed=9)
        b = ReservoirSampler(capacity=64, seed=9)
        rng = random.Random(43)
        values = [rng.random() for _ in range(1_000)]
        for value in values:
            a.add(value)
            b.add(value)
        assert a.sample == b.sample
        restored = ReservoirSampler.from_dict(
            json.loads(json.dumps(a.to_dict()))
        )
        assert restored.to_dict() == a.to_dict()
        # The restored sampler continues the exact PRNG sequence.
        a.add(0.123)
        restored.add(0.123)
        assert restored.sample == a.sample

    def test_merged_represents_both_streams(self):
        rng = random.Random(47)
        a = ReservoirSampler(capacity=512, seed=1)
        b = ReservoirSampler(capacity=512, seed=2)
        for _ in range(5_000):
            a.add(rng.uniform(0.0, 1.0))
        for _ in range(5_000):
            b.add(rng.uniform(2.0, 3.0))
        merged = a.merged(b)
        assert merged.count == 10_000
        # Half the mass below 1, half above 2 → the median sits between
        # the two bands and the quartiles inside them.
        assert 0.0 <= merged.quantile(0.25) <= 1.0
        assert 2.0 <= merged.quantile(0.75) <= 3.0
