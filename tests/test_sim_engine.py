"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    Simulator,
    microseconds,
    milliseconds,
    seconds,
)


class TestTimeConversions:
    def test_seconds(self):
        assert seconds(1) == NS_PER_SEC
        assert seconds(0.5) == NS_PER_SEC // 2

    def test_milliseconds(self):
        assert milliseconds(10) == 10 * NS_PER_MS

    def test_microseconds(self):
        assert microseconds(500) == 500 * NS_PER_US

    def test_fractional_rounds(self):
        assert microseconds(0.5) == 500


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(300, order.append, "c")
        sim.schedule(100, order.append, "a")
        sim.schedule(200, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self, sim):
        order = []
        for tag in "abcde":
            sim.schedule(50, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(123, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [123]
        assert sim.now == 123

    def test_schedule_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_nested_scheduling(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(10, lambda: order.append("inner"))

        sim.schedule(5, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 15

    def test_args_passed_through(self, sim):
        got = []
        sim.schedule(1, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, 1)
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_none_is_noop(self, sim):
        sim.cancel(None)  # must not raise

    def test_double_cancel_is_safe(self, sim):
        event = sim.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancel_inside_callback(self, sim):
        fired = []
        later = sim.schedule(20, fired.append, "later")
        sim.schedule(10, later.cancel)
        sim.run()
        assert fired == []


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(10, fired.append, "early")
        sim.schedule(100, fired.append, "late")
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == 50
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_without_events(self, sim):
        sim.run(until=1_000)
        assert sim.now == 1_000

    def test_max_events(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(i + 1, fired.append, i)
        count = sim.run(max_events=3)
        assert count == 3
        assert fired == [0, 1, 2]

    def test_run_returns_events_fired(self, sim):
        for i in range(5):
            sim.schedule(i, lambda: None)
        assert sim.run() == 5
        assert sim.events_fired == 5

    def test_peek_time_skips_cancelled(self, sim):
        first = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        first.cancel()
        assert sim.peek_time() == 20

    def test_peek_time_empty(self, sim):
        assert sim.peek_time() is None

    def test_reset(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0
        assert sim.pending == 0
        assert sim.events_fired == 0


class TestStop:
    def test_stop_ends_run_at_current_event(self, sim):
        fired = []
        sim.schedule(10, fired.append, "a")

        def stop_now():
            fired.append("stop")
            sim.stop()

        sim.schedule(20, stop_now)
        sim.schedule(30, fired.append, "never")
        sim.run()
        assert fired == ["a", "stop"]
        assert sim.now == 20

    def test_stop_with_until_leaves_clock_at_stop_event(self, sim):
        sim.schedule(10, sim.stop)
        sim.schedule(20, lambda: None)
        sim.run(until=1_000)
        assert sim.now == 10  # not advanced to `until`

    def test_stop_does_not_persist_to_next_run(self, sim):
        fired = []
        sim.schedule(10, sim.stop)
        sim.run()
        sim.schedule(10, fired.append, "second-run")
        sim.run()
        assert fired == ["second-run"]

    def test_stop_outside_run_is_noop(self, sim):
        fired = []
        sim.stop()
        sim.schedule(10, fired.append, 1)
        sim.run()
        assert fired == [1]


class TestReentrancy:
    def test_reentrant_run_raises(self, sim):
        errors = []

        def nested():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(10, nested)
        sim.run()
        assert len(errors) == 1

    def test_engine_still_usable_after_reentrant_attempt(self, sim):
        sim.schedule(10, lambda: pytest.raises(RuntimeError, sim.run))
        sim.run()
        fired = []
        sim.schedule(5, fired.append, 1)
        assert sim.run() == 1
        assert fired == [1]


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def trace():
            local = Simulator()
            order = []
            for i in range(50):
                local.schedule((i * 37) % 17 + 1, order.append, i)
            local.run()
            return order

        assert trace() == trace()
