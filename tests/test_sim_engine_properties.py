"""Engine property tests: ordering, cancellation, stop(), heap stress.

``tests/test_sim_engine.py`` pins the engine's documented behaviours one
example at a time; this file attacks the same contract with adversarial
interleavings — hypothesis-generated schedules and a fixed-seed 10k-op
random walk checked against a brain-dead reference model (a sorted
list).  Any heap corruption, FIFO tie-break slip, or cancel/stop edge
case shows up as a divergence from the model.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


# --------------------------------------------------------------------- #
# Same-instant FIFO
# --------------------------------------------------------------------- #


@given(
    st.lists(
        st.integers(min_value=0, max_value=5),  # few distinct times: max ties
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_same_instant_events_fire_in_scheduling_order(delays):
    sim = Simulator()
    fired = []
    for label, delay in enumerate(delays):
        sim.schedule(delay, fired.append, (delay, label))
    sim.run()
    # Stable sort by time == time-order with FIFO tie-break by schedule
    # order, which is exactly the engine's contract.
    assert fired == sorted(fired, key=lambda item: item[0])


def test_same_instant_callback_can_cancel_its_successor():
    """An event may cancel a *later-scheduled* event at the same instant
    and the victim must not fire — the transport layer relies on this
    (ACK processing cancels the retransmit timer set in the same ns)."""
    sim = Simulator()
    fired = []
    victim = None

    def assassin():
        fired.append("assassin")
        sim.cancel(victim)

    sim.schedule(10, assassin)
    victim = sim.schedule(10, fired.append, "victim")
    sim.schedule(10, fired.append, "bystander")
    sim.run()
    assert fired == ["assassin", "bystander"]


def test_cancel_then_fire_same_event_object_is_inert():
    """A cancelled event stays dead even if cancel() raced with its pop:
    double-cancel, cancel-after-fire, and firing order are all safe."""
    sim = Simulator()
    fired = []
    event = sim.schedule(5, fired.append, "once")
    sim.run()
    assert fired == ["once"]
    event.cancel()  # cancel after it already fired: no-op
    sim.cancel(event)
    sim.run()
    assert fired == ["once"]


# --------------------------------------------------------------------- #
# stop() mid-callback
# --------------------------------------------------------------------- #


def test_stop_mid_callback_preserves_remaining_events():
    """stop() ends the run *after* the current callback; everything
    still queued must survive untouched and fire on the next run()."""
    sim = Simulator()
    fired = []

    def stopper():
        fired.append("stopper")
        sim.stop()
        sim.schedule(1, fired.append, "scheduled-after-stop")

    sim.schedule(10, stopper)
    sim.schedule(10, fired.append, "same-instant-survivor")
    sim.schedule(20, fired.append, "later-survivor")
    count = sim.run()
    assert count == 1
    assert fired == ["stopper"]
    assert sim.now == 10
    assert sim.pending == 3

    # The same queue resumes exactly where it left off.
    sim.run()
    assert fired == [
        "stopper",
        "same-instant-survivor",
        "scheduled-after-stop",
        "later-survivor",
    ]


def test_stop_mid_callback_beats_until_clock_advance():
    sim = Simulator()
    sim.schedule(10, sim.stop)
    sim.run(until=1_000)
    assert sim.now == 10, "stop() must pin the clock at the stopping event"


# --------------------------------------------------------------------- #
# Heap integrity under random schedule/cancel interleavings
# --------------------------------------------------------------------- #


def _run_against_model(seed, n_ops):
    """Drive the engine with a random schedule/cancel/run interleaving
    and predict every firing with a reference model (sorted list of
    (time, seq) entries, cancelled entries removed)."""
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    live = []  # model: list of (time, seq, event, label)
    for op in range(n_ops):
        roll = rng.random()
        if roll < 0.55 or not live:
            delay = rng.randrange(0, 1_000)
            label = op
            event = sim.schedule(delay, fired.append, label)
            live.append((sim.now + delay, event.seq, event, label))
        elif roll < 0.80:
            victim = rng.choice(live)
            sim.cancel(victim[2])
            live.remove(victim)
        else:
            # Partial run: consume a random slice of the queue.
            budget = rng.randrange(1, 8)
            expected = sorted(live)[:budget]
            before = len(fired)
            sim.run(max_events=budget)
            assert fired[before:] == [entry[3] for entry in expected]
            for entry in expected:
                live.remove(entry)
    expected = sorted(live)
    before = len(fired)
    sim.run()
    assert fired[before:] == [entry[3] for entry in expected]
    assert sim.pending == 0 or all(
        event.cancelled for event in sim._queue
    )


def test_heap_survives_10k_random_schedule_cancel_interleavings():
    _run_against_model(seed=2024, n_ops=10_000)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_heap_matches_model_on_short_random_walks(seed):
    _run_against_model(seed=seed, n_ops=120)
