"""Engine property tests: ordering, cancellation, stop(), queue stress.

``tests/test_sim_engine.py`` pins the engine's documented behaviours one
example at a time; this file attacks the same contract with adversarial
interleavings — hypothesis-generated schedules and a fixed-seed 10k-op
random walk checked against a brain-dead reference model (a sorted
list).  Any queue corruption, FIFO tie-break slip, or cancel/stop edge
case shows up as a divergence from the model.

Every test is parametrized over BOTH engines (binary heap and calendar
wheel): the contract is one contract, and the wheel must satisfy it
verbatim — same firing order, same clock behaviour, same cancel
semantics.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator, WheelSimulator

ENGINES = pytest.mark.parametrize(
    "make_sim", [Simulator, WheelSimulator], ids=["heap", "wheel"]
)


# --------------------------------------------------------------------- #
# Same-instant FIFO
# --------------------------------------------------------------------- #


@ENGINES
@given(
    st.lists(
        st.integers(min_value=0, max_value=5),  # few distinct times: max ties
        min_size=1,
        max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_same_instant_events_fire_in_scheduling_order(make_sim, delays):
    sim = make_sim()
    fired = []
    for label, delay in enumerate(delays):
        sim.schedule(delay, fired.append, (delay, label))
    sim.run()
    # Stable sort by time == time-order with FIFO tie-break by schedule
    # order, which is exactly the engine's contract.
    assert fired == sorted(fired, key=lambda item: item[0])


@ENGINES
def test_same_instant_callback_can_cancel_its_successor(make_sim):
    """An event may cancel a *later-scheduled* event at the same instant
    and the victim must not fire — the transport layer relies on this
    (ACK processing cancels the retransmit timer set in the same ns)."""
    sim = make_sim()
    fired = []
    victim = None

    def assassin():
        fired.append("assassin")
        sim.cancel(victim)

    sim.schedule(10, assassin)
    victim = sim.schedule(10, fired.append, "victim")
    sim.schedule(10, fired.append, "bystander")
    sim.run()
    assert fired == ["assassin", "bystander"]


@ENGINES
def test_cancel_then_fire_same_event_object_is_inert(make_sim):
    """A cancelled event stays dead even if cancel() raced with its pop:
    double-cancel, cancel-after-fire, and firing order are all safe."""
    sim = make_sim()
    fired = []
    event = sim.schedule(5, fired.append, "once")
    sim.run()
    assert fired == ["once"]
    event.cancel()  # cancel after it already fired: no-op
    sim.cancel(event)
    sim.run()
    assert fired == ["once"]


# --------------------------------------------------------------------- #
# stop() mid-callback
# --------------------------------------------------------------------- #


@ENGINES
def test_stop_mid_callback_preserves_remaining_events(make_sim):
    """stop() ends the run *after* the current callback; everything
    still queued must survive untouched and fire on the next run()."""
    sim = make_sim()
    fired = []

    def stopper():
        fired.append("stopper")
        sim.stop()
        sim.schedule(1, fired.append, "scheduled-after-stop")

    sim.schedule(10, stopper)
    sim.schedule(10, fired.append, "same-instant-survivor")
    sim.schedule(20, fired.append, "later-survivor")
    count = sim.run()
    assert count == 1
    assert fired == ["stopper"]
    assert sim.now == 10
    assert sim.pending == 3

    # The same queue resumes exactly where it left off.
    sim.run()
    assert fired == [
        "stopper",
        "same-instant-survivor",
        "scheduled-after-stop",
        "later-survivor",
    ]


@ENGINES
def test_stop_mid_callback_beats_until_clock_advance(make_sim):
    sim = make_sim()
    sim.schedule(10, sim.stop)
    sim.run(until=1_000)
    assert sim.now == 10, "stop() must pin the clock at the stopping event"


# --------------------------------------------------------------------- #
# Queue integrity under random schedule/cancel interleavings
# --------------------------------------------------------------------- #


def _run_against_model(make_sim, seed, n_ops):
    """Drive the engine with a random schedule/cancel/run interleaving
    and predict every firing with a reference model (sorted list of
    (time, seq) entries, cancelled entries removed)."""
    rng = random.Random(seed)
    sim = make_sim()
    fired = []
    live = []  # model: list of (time, seq, event, label)
    for op in range(n_ops):
        roll = rng.random()
        if roll < 0.55 or not live:
            delay = rng.randrange(0, 1_000)
            label = op
            event = sim.schedule(delay, fired.append, label)
            live.append((sim.now + delay, event.seq, event, label))
        elif roll < 0.80:
            victim = rng.choice(live)
            sim.cancel(victim[2])
            live.remove(victim)
        else:
            # Partial run: consume a random slice of the queue.
            budget = rng.randrange(1, 8)
            expected = sorted(live)[:budget]
            before = len(fired)
            sim.run(max_events=budget)
            assert fired[before:] == [entry[3] for entry in expected]
            for entry in expected:
                live.remove(entry)
    expected = sorted(live)
    before = len(fired)
    sim.run()
    assert fired[before:] == [entry[3] for entry in expected]
    # After a full run only cancelled husks may remain queued.
    assert sim.peek_time() is None


@ENGINES
def test_queue_survives_10k_random_schedule_cancel_interleavings(make_sim):
    _run_against_model(make_sim, seed=2024, n_ops=10_000)


@ENGINES
@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_queue_matches_model_on_short_random_walks(make_sim, seed):
    _run_against_model(make_sim, seed=seed, n_ops=120)


# --------------------------------------------------------------------- #
# Wheel-specific structure: slots, overflow, rollover, periodic re-arm
# --------------------------------------------------------------------- #


def test_wheel_cancel_inside_open_slot():
    """Cancel an event that already sits in the *live* bucket (the slot
    the cursor has opened) — it must be skipped, not fired, and FIFO
    order among its same-instant survivors must hold."""
    sim = WheelSimulator()
    fired = []
    victims = []

    def killer():
        fired.append("killer")
        for victim in victims:
            sim.cancel(victim)

    sim.schedule(7, killer)
    victims.append(sim.schedule(7, fired.append, "dead-1"))
    sim.schedule(7, fired.append, "alive")
    victims.append(sim.schedule(7, fired.append, "dead-2"))
    sim.run()
    assert fired == ["killer", "alive"]
    assert sim.peek_time() is None


def test_wheel_schedule_at_current_instant_from_callback():
    """schedule(0, ...) from inside a firing event lands in the already
    open bucket and still fires this instant, after its siblings."""
    sim = WheelSimulator()
    fired = []

    def spawner():
        fired.append("spawner")
        sim.schedule(0, fired.append, "same-instant-child")

    sim.schedule(3, spawner)
    sim.schedule(3, fired.append, "sibling")
    sim.run()
    assert fired == ["spawner", "sibling", "same-instant-child"]
    assert sim.now == 3


def test_wheel_overflow_and_rollover_round_trip():
    """Events far beyond the wheel horizon must overflow to the heap,
    refill on rollover, and fire in exact time order with near events."""
    sim = WheelSimulator(slot_ns_bits=4, num_slot_bits=3)  # tiny: 16ns x 8
    horizon = (1 << 4) * (1 << 3)  # 128 ns
    fired = []
    times = [1, horizon - 1, horizon + 5, 3 * horizon, 10 * horizon + 7]
    for t in times:
        sim.schedule(t, fired.append, t)
    assert sim.wheel_overflow_pushes > 0
    sim.run()
    assert fired == sorted(times)
    stats = sim.wheel_stats()
    assert stats["rollovers"] > 0
    assert stats["refilled"] >= stats["overflow_pushes"] - len(sim._overflow)


def test_wheel_periodic_rearm_stays_in_slot():
    """schedule_periodic on the wheel re-arms by event reuse: the same
    Event object fires every tick, total events == tick count."""
    sim = WheelSimulator()
    ticks = []
    event = sim.schedule_periodic(10, lambda: ticks.append(sim.now))
    sim.schedule(95, sim.stop)
    sim.run()
    assert ticks == [10, 20, 30, 40, 50, 60, 70, 80, 90]
    sim.cancel(event)
    sim.run()
    assert len(ticks) == 9, "cancelled periodic must not re-arm"


def test_wheel_reset_clears_all_structures():
    sim = WheelSimulator(slot_ns_bits=4, num_slot_bits=3)
    sim.schedule(5, lambda: None)
    sim.schedule(10_000, lambda: None)  # overflow
    sim.reset()
    assert sim.pending == 0
    assert sim.peek_time() is None
    assert sim.now == 0
    fired = []
    sim.schedule(1, fired.append, "post-reset")
    sim.run()
    assert fired == ["post-reset"]
