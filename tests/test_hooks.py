"""Tests for repro.hooks.HookSet — the unified attach/detach surface.

One fabric, four observer slots (checker / tracer / audit / profiler),
one rule: attach refuses to overwrite, detach is idempotent, and the
legacy hand-wired attributes survive only as deprecated properties.
"""

import warnings

import pytest

from repro.hooks import SLOTS, HookSet
from repro.lb.factory import install_lb
from repro.validate.checker import install_checker
from tests.conftest import make_fabric


class FakeChecker:
    """Minimal checker: just the watch_port() surface attach needs."""

    def __init__(self):
        self.watched = []

    def watch_port(self, port):
        self.watched.append(port)


class FakeTracer:
    pass


class TestAttach:
    def test_fabric_builds_an_empty_hookset(self):
        fabric = make_fabric()
        assert isinstance(fabric.hooks, HookSet)
        assert fabric.hooks.occupied() == {}
        for slot in SLOTS:
            assert fabric.hooks.occupant(slot) is None

    def test_attach_checker_wires_fabric_sim_and_ports(self):
        fabric = make_fabric()
        checker = FakeChecker()
        fabric.hooks.attach(checker=checker)
        assert fabric.hooks.occupant("checker") is checker
        assert fabric._checker is checker
        assert fabric.sim._checker is checker
        assert set(checker.watched) == set(fabric.topology.all_ports())

    def test_attach_tracer_wires_fabric_and_every_port(self):
        fabric = make_fabric()
        tracer = FakeTracer()
        fabric.hooks.attach(tracer=tracer)
        assert fabric._tracer is tracer
        assert all(
            port._tracer is tracer for port in fabric.topology.all_ports()
        )

    def test_attach_refuses_occupied_slot(self):
        fabric = make_fabric()
        fabric.hooks.attach(tracer=FakeTracer())
        with pytest.raises(RuntimeError, match="already has a tracer"):
            fabric.hooks.attach(tracer=FakeTracer())

    def test_attach_same_object_twice_is_a_no_op(self):
        fabric = make_fabric()
        tracer = FakeTracer()
        fabric.hooks.attach(tracer=tracer)
        fabric.hooks.attach(tracer=tracer)  # idempotent, no error
        assert fabric.hooks.occupant("tracer") is tracer

    def test_failed_attach_wires_nothing(self):
        """Atomicity: if ANY requested slot is occupied, no requested
        slot changes — the checker below must stay unattached."""
        fabric = make_fabric()
        fabric.hooks.attach(tracer=FakeTracer())
        checker = FakeChecker()
        with pytest.raises(RuntimeError):
            fabric.hooks.attach(checker=checker, tracer=FakeTracer())
        assert fabric.hooks.occupant("checker") is None
        assert fabric._checker is None
        assert checker.watched == []

    def test_attach_returns_self_for_chaining(self):
        fabric = make_fabric()
        assert fabric.hooks.attach(tracer=FakeTracer()) is fabric.hooks


class TestDetach:
    def test_detach_tracer_unwires_everything(self):
        fabric = make_fabric()
        fabric.hooks.attach(tracer=FakeTracer())
        fabric.hooks.detach(tracer=True)
        assert fabric.hooks.occupant("tracer") is None
        assert fabric._tracer is None
        assert all(
            port._tracer is None for port in fabric.topology.all_ports()
        )

    def test_detach_frees_slot_for_reattach(self):
        fabric = make_fabric()
        fabric.hooks.attach(tracer=FakeTracer())
        fabric.hooks.detach(tracer=True)
        replacement = FakeTracer()
        fabric.hooks.attach(tracer=replacement)
        assert fabric._tracer is replacement

    def test_detach_on_empty_slot_is_a_no_op(self):
        fabric = make_fabric()
        fabric.hooks.detach(checker=True, tracer=True)
        assert fabric.hooks.occupied() == {}

    def test_detach_all(self):
        fabric = make_fabric()
        fabric.hooks.attach(checker=FakeChecker(), tracer=FakeTracer())
        fabric.hooks.detach_all()
        assert fabric.hooks.occupied() == {}
        assert fabric._checker is None
        assert fabric.sim._checker is None


class TestSubsystemIntegration:
    def test_install_checker_goes_through_hookset(self):
        fabric = make_fabric()
        install_lb(fabric, "ecmp")
        checker = install_checker(fabric)
        assert fabric.hooks.occupant("checker") is checker
        with pytest.raises(RuntimeError, match="already has a checker"):
            install_checker(fabric)

    def test_install_telemetry_goes_through_hookset(self):
        from repro.telemetry import install_telemetry

        fabric = make_fabric()
        install_lb(fabric, "ecmp")
        telemetry = install_telemetry(fabric)
        assert fabric.hooks.occupant("tracer") is telemetry.tracer
        assert fabric.hooks.occupant("profiler") is telemetry.profiler

    def test_shared_wiring_reaches_hermes_leaf_states(self):
        from repro.telemetry import install_telemetry, watch_lb

        fabric = make_fabric()
        shared = install_lb(fabric, "hermes")
        telemetry = install_telemetry(fabric)
        watch_lb(telemetry, fabric, shared)
        audit = fabric.hooks.occupant("audit")
        assert audit is telemetry.audit
        for state in shared["leaf_states"].values():
            assert state.audit is audit


class TestRemovedLegacysetters:
    """The legacy hand-wired attributes: readable forever, assignment a
    hard ``AttributeError`` pointing at the HookSet API (the PR-6
    DeprecationWarning grace period is over)."""

    def _assert_write_rejected(self, obj, attr, value):
        with pytest.raises(AttributeError, match="hooks.attach"):
            setattr(obj, attr, value)

    def test_fabric_checker_and_tracer_setters_raise(self):
        fabric = make_fabric()
        self._assert_write_rejected(fabric, "checker", FakeChecker())
        self._assert_write_rejected(fabric, "tracer", FakeTracer())

    def test_sim_checker_and_profiler_setters_raise(self):
        fabric = make_fabric()
        self._assert_write_rejected(fabric.sim, "checker", FakeChecker())
        self._assert_write_rejected(fabric.sim, "profiler", object())

    def test_port_checker_and_tracer_setters_raise(self):
        fabric = make_fabric()
        port = next(iter(fabric.topology.all_ports()))
        self._assert_write_rejected(port, "checker", FakeChecker())
        self._assert_write_rejected(port, "tracer", FakeTracer())

    def test_rejected_write_changes_nothing(self):
        fabric = make_fabric()
        self._assert_write_rejected(fabric.sim, "checker", FakeChecker())
        assert fabric.sim.checker is None

    def test_getters_read_silently_and_reflect_hookset(self):
        fabric = make_fabric()
        tracer = FakeTracer()
        fabric.hooks.attach(tracer=tracer)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fabric.tracer is tracer
            assert fabric.checker is None
            assert fabric.sim.checker is None
            port = next(iter(fabric.topology.all_ports()))
            assert port.tracer is tracer
