"""Tests for the packet tracer."""

from repro.lb.factory import install_lb
from repro.net.packet import PacketKind
from repro.net.trace import PacketTracer
from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS
from tests.conftest import make_fabric


class TestTracer:
    def test_records_send_hops_and_delivery(self, fabric):
        install_lb(fabric, "ecmp")
        flow = DctcpFlow(fabric, 0, 2, MSS)
        fabric.register_flow(flow)
        with PacketTracer(fabric) as tracer:
            flow.start()
            fabric.sim.run(until=10_000_000)
        kinds = {e.kind for e in tracer.events}
        assert kinds == {"send", "hop", "deliver"}
        # 1 data + 1 ack delivered.
        assert tracer.deliveries() == 2

    def test_filter_by_flow(self, fabric):
        install_lb(fabric, "ecmp")
        a = DctcpFlow(fabric, 0, 2, MSS)
        b = DctcpFlow(fabric, 1, 3, MSS)
        for flow in (a, b):
            fabric.register_flow(flow)
        with PacketTracer(
            fabric, predicate=lambda p: p.flow_id == a.flow_id
        ) as tracer:
            a.start()
            b.start()
            fabric.sim.run(until=10_000_000)
        assert all(e.flow_id == a.flow_id for e in tracer.events)

    def test_paths_used_tracks_spraying(self, fabric):
        install_lb(fabric, "drb")
        flow = DctcpFlow(fabric, 0, 2, 20 * MSS)
        fabric.register_flow(flow)
        with PacketTracer(fabric) as tracer:
            flow.start()
            fabric.sim.run(until=10_000_000)
        assert sorted(tracer.paths_used(flow.flow_id)) == [0, 1]

    def test_detach_releases_hook(self, fabric):
        tracer = PacketTracer(fabric).attach()
        assert fabric.tracer is tracer
        tracer.detach()
        assert fabric.tracer is None

    def test_attach_refuses_occupied_hook(self, fabric):
        import pytest

        first = PacketTracer(fabric).attach()
        with pytest.raises(RuntimeError):
            PacketTracer(fabric).attach()
        first.detach()
        PacketTracer(fabric).attach().detach()

    def test_truncation(self, fabric):
        install_lb(fabric, "ecmp")
        flow = DctcpFlow(fabric, 0, 2, 50 * MSS)
        fabric.register_flow(flow)
        with PacketTracer(fabric, max_events=5) as tracer:
            flow.start()
            fabric.sim.run(until=10_000_000)
        assert len(tracer.events) == 5
        assert tracer.truncated

    def test_event_metadata(self, fabric):
        install_lb(fabric, "ecmp")
        flow = DctcpFlow(fabric, 0, 2, MSS)
        fabric.register_flow(flow)
        with PacketTracer(fabric) as tracer:
            flow.start()
            fabric.sim.run(until=10_000_000)
        send = next(e for e in tracer.events if e.kind == "send")
        assert send.port == "host0->leaf0"
        assert send.packet_kind_name == "DATA"
        delivery = next(e for e in tracer.events if e.kind == "deliver")
        assert delivery.port is None
