"""Behavioural tests for DCTCP."""

import pytest

from repro.transport.dctcp import DctcpFlow
from repro.transport.tcp import MSS, TcpFlow
from tests.conftest import make_fabric


def run_flow(fabric, cls=DctcpFlow, src=0, dst=2, size=100 * MSS, **kwargs):
    flow = cls(fabric, src, dst, size, **kwargs)
    fabric.register_flow(flow)
    flow.start()
    fabric.sim.run(until=fabric.sim.now + 5_000_000_000)
    return flow


class TestDctcpBasics:
    def test_completes_clean_transfer(self, fabric):
        flow = run_flow(fabric)
        assert flow.finished

    def test_packets_are_ecn_capable(self, fabric):
        assert DctcpFlow(fabric, 0, 2, MSS).ecn_capable is True
        assert TcpFlow(fabric, 0, 2, MSS).ecn_capable is False

    def test_invalid_gain_rejected(self, fabric):
        with pytest.raises(ValueError):
            DctcpFlow(fabric, 0, 2, MSS, g=0.0)

    def test_alpha_decays_without_marks(self, fabric):
        flow = run_flow(fabric, size=300 * MSS)
        # Clean path: alpha decays from its conservative initial 1.0 a
        # little with every window update.
        assert flow.alpha < 1.0

    def test_alpha_update_math(self, fabric):
        """alpha <- (1-g) alpha + g F, once per window."""
        flow = DctcpFlow(fabric, 0, 2, 1000 * MSS, g=0.5)
        flow.alpha = 1.0
        flow._acks_total, flow._acks_marked = 3, 3  # F = 1 so far
        flow._alpha_seq = 0
        flow.snd_nxt = 10

        class FakeAck:
            ack_seq = 5
            ece = True

        flow._ecn_feedback(FakeAck(), 100_000)
        # F = 4/4 = 1.0 -> alpha = 0.5*1 + 0.5*1 = 1.0, counters reset
        assert flow.alpha == 1.0
        assert flow._acks_total == 0
        flow._acks_total, flow._acks_marked = 4, 0

        class CleanAck:
            ack_seq = 11
            ece = False

        flow.snd_nxt = 20
        flow._alpha_seq = 10
        flow._ecn_feedback(CleanAck(), 100_000)
        # F = 0/5 -> alpha = 0.5*1 + 0.5*0 = 0.5
        assert flow.alpha == 0.5

    def test_window_cut_once_per_window(self, fabric):
        flow = DctcpFlow(fabric, 0, 2, 1000 * MSS)
        flow.alpha = 1.0
        flow.cwnd = 100.0
        flow.snd_nxt = 50
        flow._cut_seq = -1

        class MarkedAck:
            ack_seq = 10
            ece = True

        flow._ecn_feedback(MarkedAck(), 100_000)
        assert flow.cwnd == 50.0  # cut by alpha/2 = 50%
        flow._ecn_feedback(MarkedAck(), 100_000)
        assert flow.cwnd == 50.0  # same window: no second cut


class TestEcnReaction:
    def _congested_fabric(self):
        """Two senders into one receiver host force queueing at its
        downlink and thus ECN marks."""
        return make_fabric(hosts_per_leaf=3)

    def test_marks_reduce_window_not_timeout(self):
        fabric = self._congested_fabric()
        flows = [
            DctcpFlow(fabric, src, 3, 400 * MSS) for src in (0, 1, 2)
        ]
        for flow in flows:
            fabric.register_flow(flow)
            flow.start()
        fabric.sim.run(until=10_000_000_000)
        assert all(f.finished for f in flows)
        assert all(f.timeout_count == 0 for f in flows)
        # Contention was real: someone saw marks.
        assert any(f._acks_marked or f.alpha > 0.0 for f in flows)

    def test_queue_held_near_marking_threshold(self):
        fabric = self._congested_fabric()
        flows = [DctcpFlow(fabric, src, 3, 600 * MSS) for src in (0, 1, 2)]
        for flow in flows:
            fabric.register_flow(flow)
            flow.start()
        down = fabric.topology.leaf_down[3]
        peak = 0
        for _ in range(200):
            fabric.sim.run(
                until=fabric.sim.now + 50_000, max_events=None
            )
            peak = max(peak, down.backlog_bytes)
            if all(f.finished for f in flows):
                break
        # DCTCP keeps the standing queue bounded well below the buffer.
        assert peak < fabric.config.buffer_bytes / 2
        assert down.drops_overflow == 0

    def test_no_losses_under_incast(self):
        fabric = self._congested_fabric()
        flows = [DctcpFlow(fabric, src, 3, 300 * MSS) for src in (0, 1, 2)]
        for flow in flows:
            fabric.register_flow(flow)
            flow.start()
        fabric.sim.run(until=10_000_000_000)
        assert sum(f.retx_count for f in flows) == 0

    def test_fair_sharing_between_two_flows(self):
        fabric = make_fabric(hosts_per_leaf=3)
        a = DctcpFlow(fabric, 0, 3, 2000 * MSS)
        b = DctcpFlow(fabric, 1, 3, 2000 * MSS)
        for flow in (a, b):
            fabric.register_flow(flow)
            flow.start()
        fabric.sim.run(until=30_000_000_000)
        assert a.finished and b.finished
        ratio = a.fct_ns / b.fct_ns
        assert 0.6 < ratio < 1.7  # rough fairness

    def test_ecn_feedback_seen_by_agent(self):
        fabric = make_fabric(hosts_per_leaf=3)
        seen = []

        class Spy:
            reroutes = 0

            def select_path(self, flow, wire):
                return 0

            def on_ack(self, flow, path, ece, rtt, is_retx):
                seen.append(ece)

            def on_path_feedback(self, *a):
                pass

            def on_timeout(self, *a):
                pass

            def on_retransmit(self, *a):
                pass

            def on_flow_done(self, *a):
                pass

        for host in fabric.hosts[:3]:
            host.lb = Spy()
        flows = [DctcpFlow(fabric, src, 3, 400 * MSS) for src in (0, 1, 2)]
        for flow in flows:
            fabric.register_flow(flow)
            flow.start()
        fabric.sim.run(until=10_000_000_000)
        assert any(seen), "agents should observe some ECN-echo marks"
