"""Unit tests for the receiver / reorder-masking policies."""

from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.transport.reorder import Receiver


def data(seq):
    return Packet(0, 0, 1, seq, 1500, PacketKind.DATA)


class Collector:
    def __init__(self):
        self.acks = []  # (seq_of_template, copies, rcv_next_at_send)

    def bind(self, receiver):
        self.receiver = receiver

    def __call__(self, template, copies):
        self.acks.append((template.seq, copies, self.receiver.rcv_next))


def make(mask=None):
    sim = Simulator()
    collector = Collector()
    receiver = Receiver(sim, collector, mask_timeout_ns=mask)
    collector.bind(receiver)
    return sim, receiver, collector


class TestInOrder:
    def test_advances_and_acks_each_packet(self):
        _, receiver, collector = make()
        for seq in range(3):
            receiver.on_data(data(seq))
        assert receiver.rcv_next == 3
        assert [c for _, c, _ in collector.acks] == [1, 1, 1]

    def test_duplicate_still_acked(self):
        _, receiver, collector = make()
        receiver.on_data(data(0))
        receiver.on_data(data(0))
        assert receiver.rcv_next == 1
        assert len(collector.acks) == 2


class TestOutOfOrderUnmasked:
    def test_gap_generates_immediate_dup_acks(self):
        _, receiver, collector = make()
        receiver.on_data(data(0))
        receiver.on_data(data(2))
        receiver.on_data(data(3))
        assert receiver.rcv_next == 1
        # Two duplicate ACKs at rcv_next == 1.
        assert [r for _, _, r in collector.acks] == [1, 1, 1]

    def test_gap_fill_jumps_cumulative(self):
        _, receiver, collector = make()
        receiver.on_data(data(1))
        receiver.on_data(data(2))
        receiver.on_data(data(0))
        assert receiver.rcv_next == 3
        assert collector.acks[-1][2] == 3

    def test_has_gap(self):
        _, receiver, _ = make()
        receiver.on_data(data(1))
        assert receiver.has_gap
        receiver.on_data(data(0))
        assert not receiver.has_gap


class TestMasking:
    def test_ooo_arrival_suppressed(self):
        _, receiver, collector = make(mask=100_000)
        receiver.on_data(data(0))
        receiver.on_data(data(2))
        assert len(collector.acks) == 1  # only the in-order packet acked

    def test_gap_filled_in_time_no_dups(self):
        sim, receiver, collector = make(mask=100_000)
        receiver.on_data(data(0))
        receiver.on_data(data(2))
        sim.run(until=50_000)
        receiver.on_data(data(1))
        sim.run()
        copies = [c for _, c, _ in collector.acks]
        assert copies == [1, 1]  # no duplicate-ACK burst ever sent

    def test_persistent_gap_flushes_dup_burst(self):
        sim, receiver, collector = make(mask=100_000)
        receiver.on_data(data(0))
        receiver.on_data(data(2))
        sim.run(until=150_000)
        bursts = [c for _, c, _ in collector.acks if c > 1]
        assert bursts == [3]  # dupthresh copies to trigger fast retransmit

    def test_flush_rearms_until_gap_filled(self):
        sim, receiver, collector = make(mask=100_000)
        receiver.on_data(data(0))
        receiver.on_data(data(2))
        sim.run(until=350_000)
        bursts = [c for _, c, _ in collector.acks if c > 1]
        assert len(bursts) >= 2  # re-armed while the gap persists

    def test_fill_after_flush_stops_bursts(self):
        sim, receiver, collector = make(mask=100_000)
        receiver.on_data(data(0))
        receiver.on_data(data(2))
        sim.run(until=150_000)
        receiver.on_data(data(1))
        n_bursts = len([c for _, c, _ in collector.acks if c > 1])
        sim.run(until=1_000_000)
        assert len([c for _, c, _ in collector.acks if c > 1]) == n_bursts
