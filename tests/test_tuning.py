"""Tests for the Hermes auto-tuner (grid search)."""

import pytest

from repro.core.tuning import TuningOutcome, mean_fct_score, tune_hermes
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import bench_topology


def tiny_hermes_config(**overrides):
    defaults = dict(
        topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
        lb="hermes",
        workload="web-search",
        load=0.4,
        n_flows=15,
        seed=1,
        size_scale=0.05,
        time_scale=0.1,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestTuneHermes:
    def test_requires_hermes(self):
        with pytest.raises(ValueError):
            tune_hermes(tiny_hermes_config(lb="ecmp"), {"t_ecn": [0.4]})

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            tune_hermes(tiny_hermes_config(), {})

    def test_grid_evaluated_exhaustively(self):
        outcome = tune_hermes(
            tiny_hermes_config(),
            {"t_ecn": [0.3, 0.5], "delta_ecn": [0.05, 0.1]},
        )
        assert len(outcome.candidates) == 4
        seen = {tuple(sorted(c.overrides.items())) for c in outcome.candidates}
        assert len(seen) == 4

    def test_sorted_best_first(self):
        outcome = tune_hermes(tiny_hermes_config(), {"t_ecn": [0.3, 0.5]})
        scores = [c.score for c in outcome.candidates]
        assert scores == sorted(scores)
        assert outcome.best.score == scores[0]

    def test_base_overrides_preserved(self):
        config = tiny_hermes_config(hermes_overrides={"delta_ecn": 0.08})
        outcome = tune_hermes(config, {"t_ecn": [0.4]})
        # The evaluated candidate combines base override + grid value;
        # the reported overrides list only the grid keys.
        assert outcome.best.overrides == {"t_ecn": 0.4}

    def test_keep_results(self):
        outcome = tune_hermes(
            tiny_hermes_config(), {"t_ecn": [0.4]}, keep_results=True
        )
        assert outcome.best.results
        assert outcome.best.results[0].stats.count == 15

    def test_multiple_seeds_averaged(self):
        outcome = tune_hermes(
            tiny_hermes_config(), {"t_ecn": [0.4]}, seeds=(1, 2)
        )
        assert len(outcome.candidates) == 1

    def test_table_rows(self):
        outcome = tune_hermes(tiny_hermes_config(), {"t_ecn": [0.3, 0.5]})
        rows = outcome.table_rows()
        assert len(rows) == 2
        assert all("t_ecn=" in row[0] for row in rows)


class TestScore:
    def test_penalizes_unfinished(self):
        class FakeStats:
            def mean_ms(self, penalize_unfinished_ns=None):
                return 5.0 if penalize_unfinished_ns else 1.0

        class FakeResult:
            sim_time_ns = 10**9

            def mean_fct_ms_with_penalty(self):
                return 5.0

        assert mean_fct_score([FakeResult()]) == 5.0
