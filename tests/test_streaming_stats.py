"""StreamingFctStats: collector semantics + experiment integration.

Two layers under test:

* the collector itself — exact counters, estimator-of-record selection
  (reservoir while exact, t-digest beyond), shard merging, JSON round
  trip, and the bounded-memory guarantee at million-flow scale;
* the runner wiring — ``streaming_stats=True`` runs the same simulation
  (bit-identical aggregate results on the golden grid) while retaining
  no per-flow records, auto-mode flips at ``STREAMING_AUTO_FLOWS``, and
  ``save_result``/``load_result`` round-trip the streaming state.
"""

from __future__ import annotations

import dataclasses
import io
import math
import random

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ResultSummary, run_cells
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology
from repro.metrics.fct import FctStats, FlowRecord
from repro.metrics.streaming import (
    DEFAULT_RESERVOIR,
    STREAMING_AUTO_FLOWS,
    StreamingFctStats,
)


def _records(n, seed=1, unfinished_every=50):
    rng = random.Random(seed)
    records = []
    for i in range(n):
        size = rng.choice([2_000, 50_000, 500_000, 20_000_000])
        fct = (
            None
            if unfinished_every and i % unfinished_every == 7
            else int(rng.lognormvariate(13.0, 1.5))
        )
        records.append(
            FlowRecord(
                flow_id=i,
                src=0,
                dst=1,
                size_bytes=size,
                start_ns=i,
                fct_ns=fct,
                retransmissions=rng.randrange(3),
                timeouts=rng.randrange(2),
            )
        )
    return records


class TestCollector:
    def test_exact_aggregates_match_fctstats(self):
        records = _records(3_000)
        exact = FctStats(records)
        streaming = StreamingFctStats(seed=1)
        for record in records:
            streaming.add_record(record)
        assert streaming.count == exact.count
        assert streaming.finished_count == exact.finished_count
        assert streaming.unfinished_count == exact.unfinished_count
        assert streaming.unfinished_fraction == exact.unfinished_fraction
        # Means are computed from exact sums — equal, not approximate.
        assert streaming.mean_ms() == pytest.approx(exact.mean_ms(), rel=1e-12)
        assert streaming.mean_ms(10**9) == pytest.approx(
            exact.mean_ms(10**9), rel=1e-12
        )
        assert streaming.small.mean_ms() == pytest.approx(
            exact.small.mean_ms(), rel=1e-12
        )
        assert streaming.large.mean_ms() == pytest.approx(
            exact.large.mean_ms(), rel=1e-12
        )
        assert (
            streaming.total_retransmissions() == exact.total_retransmissions()
        )

    def test_estimator_of_record_switches(self):
        streaming = StreamingFctStats(seed=1)
        for record in _records(100, unfinished_every=0):
            streaming.add_record(record)
        # 100 finished flows: the reservoir still holds everything.
        assert streaming.estimators() == {"p50": "reservoir", "p99": "reservoir"}
        exact = FctStats(_records(100, unfinished_every=0))
        assert streaming.median_ms() == pytest.approx(exact.median_ms())
        assert streaming.p99_ms() == pytest.approx(exact.p99_ms())
        for record in _records(DEFAULT_RESERVOIR + 100, seed=2):
            streaming.add_record(record)
        assert streaming.estimators() == {"p50": "tdigest", "p99": "tdigest"}

    def test_percentiles_within_one_percent_at_scale(self):
        records = _records(60_000, unfinished_every=0)
        exact = FctStats(records)
        streaming = StreamingFctStats(seed=1)
        for record in records:
            streaming.add_record(record)
        for estimate, truth in (
            (streaming.median_ms(), exact.median_ms()),
            (streaming.p99_ms(), exact.p99_ms()),
        ):
            assert abs(estimate - truth) / truth < 0.01
        # And the cross-check estimator agrees to sampling noise.
        assert abs(streaming.cross_check_ms(99.0) - exact.p99_ms()) / (
            exact.p99_ms()
        ) < 0.15

    def test_empty_collector(self):
        streaming = StreamingFctStats()
        assert math.isnan(streaming.mean_ms())
        assert math.isnan(streaming.median_ms())
        assert streaming.quantile_ns(50.0) == (None, "none")
        assert streaming.estimators() == {"p50": "none", "p99": "none"}
        assert streaming.records == ()

    def test_subset_unsupported(self):
        with pytest.raises(NotImplementedError):
            StreamingFctStats().subset(lambda r: True)

    def test_merge_shards_matches_single_stream(self):
        records = _records(8_000)
        whole = StreamingFctStats(seed=1)
        for record in records:
            whole.add_record(record)
        shards = [StreamingFctStats(seed=1) for _ in range(3)]
        for i, record in enumerate(records):
            shards[i % 3].add_record(record)
        merged = shards[0]
        merged.merge(shards[1])
        merged.merge(shards[2])
        assert merged.count == whole.count
        assert merged.finished_count == whole.finished_count
        assert merged.mean_ms() == pytest.approx(whole.mean_ms(), rel=1e-12)
        assert merged.small.count == whole.small.count
        assert merged.p99_ms() == pytest.approx(whole.p99_ms(), rel=0.02)

    def test_merge_rejects_mismatched_buckets(self):
        a = StreamingFctStats(small_bytes=100)
        b = StreamingFctStats(small_bytes=200)
        with pytest.raises(ValueError, match="size buckets"):
            a.merge(b)

    def test_json_round_trip(self):
        import json

        streaming = StreamingFctStats(seed=3)
        for record in _records(5_000):
            streaming.add_record(record)
        doc = json.loads(json.dumps(streaming.to_dict()))
        restored = StreamingFctStats.from_dict(doc)
        assert restored.to_dict() == streaming.to_dict()
        assert restored.count == streaming.count
        assert restored.mean_ms() == streaming.mean_ms()
        assert restored.p99_ms() == streaming.p99_ms()
        assert restored.small.mean_ms() == streaming.small.mean_ms()

    def test_million_flows_bounded_memory(self):
        """The acceptance bar: a million FCTs stream through in
        O(centroids + reservoir) retained items — about four decades
        below the flow count — with p50/p99 within 1% of exact."""
        rng = random.Random(1)
        streaming = StreamingFctStats(seed=1)
        values = []
        for _ in range(1_000_000):
            fct = int(rng.lognormvariate(13.0, 1.6))
            values.append(fct)
            streaming.add(50_000, fct)
        assert streaming.count == 1_000_000
        # 3 collectors x (reservoir + digest); digest buffers are capped.
        budget = 3 * (DEFAULT_RESERVOIR + 4 * 400 + 2 * 400)
        assert streaming.memory_items() <= budget
        from repro.metrics.fct import percentile

        values.sort()
        for q, estimate in (
            (50.0, streaming.median_ms()),
            (99.0, streaming.p99_ms()),
        ):
            truth = percentile(values, q) / 1e6
            assert abs(estimate - truth) / truth < 0.01


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def topo(self):
        return bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=4)

    def _config(self, topo, **kwargs):
        base = dict(
            topology=topo,
            lb="hermes",
            workload="web-search",
            load=0.5,
            n_flows=40,
            seed=1,
            size_scale=0.05,
            time_scale=0.05,
        )
        base.update(kwargs)
        return ExperimentConfig(**base)

    def test_streaming_run_matches_exact_run(self, topo):
        """Same simulation either way: aggregate statistics identical to
        the exact collector's (the golden-grid guarantee, one cell)."""
        exact = run_experiment(self._config(topo, streaming_stats=False))
        streaming = run_experiment(self._config(topo, streaming_stats=True))
        assert streaming.stats.is_streaming
        assert not exact.stats.is_streaming
        assert streaming.events == exact.events
        assert streaming.sim_time_ns == exact.sim_time_ns
        assert streaming.stats.count == exact.stats.count
        assert streaming.stats.finished_count == exact.stats.finished_count
        assert streaming.stats.mean_ms() == pytest.approx(
            exact.stats.mean_ms(), rel=1e-12
        )
        # 40 flows → reservoir is exact → percentiles equal too.
        assert streaming.stats.p99_ms() == pytest.approx(
            exact.stats.p99_ms(), rel=1e-9
        )
        # No per-flow state retained anywhere.
        assert streaming.stats.records == ()
        assert streaming.fabric is not None
        assert len(streaming.fabric.flows) == 0

    def test_eviction_defers_until_stragglers_drain(self, topo):
        """Regression: at higher load and flow counts, finished hermes
        flows still receive stragglers (a retransmitted segment must
        elicit its dup ACK).  Naive evict-on-finish swallowed those and
        changed the event count; quiescence-aware eviction must not."""
        config = self._config(
            topo, load=0.7, n_flows=200, size_scale=0.1, time_scale=0.1
        )
        exact = run_experiment(dataclasses.replace(config, streaming_stats=False))
        stream = run_experiment(dataclasses.replace(config, streaming_stats=True))
        assert stream.events == exact.events
        assert stream.sim_time_ns == exact.sim_time_ns
        assert stream.stats.count == exact.stats.count
        assert stream.stats.finished_count == exact.stats.finished_count
        assert stream.stats.mean_ms() == pytest.approx(
            exact.stats.mean_ms(), rel=1e-12
        )
        assert len(stream.fabric.flows) == 0

    def test_auto_mode_thresholds(self, topo):
        below = self._config(topo, n_flows=100)
        at = dataclasses.replace(below, n_flows=STREAMING_AUTO_FLOWS)
        assert not below.streaming_enabled()
        assert at.streaming_enabled()
        assert self._config(
            topo, n_flows=100, streaming_stats=True
        ).streaming_enabled()
        assert not dataclasses.replace(
            at, streaming_stats=False
        ).streaming_enabled()

    def test_summary_records_estimators(self, topo):
        streaming, exact = run_cells(
            [
                self._config(topo, streaming_stats=True),
                self._config(topo, streaming_stats=False),
            ],
            jobs=1,
            use_cache=False,
        )
        assert streaming.percentile_estimators == {
            "p50": "reservoir",
            "p99": "reservoir",
        }
        assert exact.percentile_estimators == {"p50": "exact", "p99": "exact"}

    def test_save_load_round_trip(self, topo):
        from repro.api import load_result, save_result

        result = run_experiment(self._config(topo, streaming_stats=True))
        buffer = io.StringIO()
        save_result(ResultSummary.from_result(result), buffer)
        buffer.seek(0)
        loaded = load_result(buffer)
        assert loaded.stats.is_streaming
        assert loaded.stats.count == result.stats.count
        assert loaded.stats.mean_ms() == result.stats.mean_ms()
        assert loaded.stats.p99_ms() == result.stats.p99_ms()
        assert loaded.percentile_estimators["p99"] == "reservoir"
        assert loaded.config == result.config

    def test_streaming_is_part_of_cache_key(self, topo):
        from repro.experiments.parallel import config_key

        exact_cfg = self._config(topo, streaming_stats=False)
        stream_cfg = self._config(topo, streaming_stats=True)
        assert config_key(exact_cfg) != config_key(stream_cfg)
