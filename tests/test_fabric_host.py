"""Unit tests for fabric forwarding and host dispatch."""

from repro.net.packet import Packet, PacketKind, make_probe
from tests.conftest import make_fabric


class RecordingFlow:
    """Minimal flow double recording deliveries."""

    def __init__(self, flow_id):
        self.flow_id = flow_id
        self.data = []
        self.acks = []

    def on_data(self, packet):
        self.data.append(packet)

    def on_ack(self, packet):
        self.acks.append(packet)


class TestForwarding:
    def test_data_packet_reaches_flow(self, fabric):
        flow = RecordingFlow(fabric.allocate_flow_id())
        fabric.flows[flow.flow_id] = flow
        packet = Packet(flow.flow_id, 0, 2, 0, 1500, PacketKind.DATA, path_id=0)
        fabric.send(packet)
        fabric.sim.run()
        assert flow.data == [packet]

    def test_ack_reaches_flow(self, fabric):
        flow = RecordingFlow(fabric.allocate_flow_id())
        fabric.flows[flow.flow_id] = flow
        ack = Packet(flow.flow_id, 2, 0, 0, 64, PacketKind.ACK, path_id=0)
        fabric.send(ack)
        fabric.sim.run()
        assert flow.acks == [ack]

    def test_unknown_flow_dropped_silently(self, fabric):
        packet = Packet(999, 0, 2, 0, 1500, PacketKind.DATA, path_id=1)
        fabric.send(packet)
        fabric.sim.run()  # must not raise

    def test_intra_rack_path(self, fabric):
        flow = RecordingFlow(fabric.allocate_flow_id())
        fabric.flows[flow.flow_id] = flow
        packet = Packet(flow.flow_id, 0, 1, 0, 1500, PacketKind.DATA, path_id=-1)
        fabric.send(packet)
        fabric.sim.run()
        assert flow.data == [packet]

    def test_flow_id_allocation_unique(self, fabric):
        ids = {fabric.allocate_flow_id() for _ in range(100)}
        assert len(ids) == 100


class TestProbeEcho:
    def test_probe_answered_with_reply(self, fabric):
        replies = []
        fabric.hosts[0].probe_sink = replies.append
        probe = make_probe(0, 0, 2, 1, fabric.sim.now)
        fabric.send(probe)
        fabric.sim.run()
        assert len(replies) == 1
        assert replies[0].kind == PacketKind.PROBE_REPLY
        assert replies[0].path_id == 1

    def test_reply_rtt_positive(self, fabric):
        replies = []
        fabric.hosts[0].probe_sink = replies.append
        probe = make_probe(0, 0, 2, 0, fabric.sim.now)
        fabric.send(probe)
        fabric.sim.run()
        rtt = fabric.sim.now - replies[0].ts_echo
        assert rtt > 0

    def test_reply_without_sink_ignored(self, fabric):
        probe = make_probe(0, 1, 2, 0, fabric.sim.now)
        fabric.send(probe)
        fabric.sim.run()  # host 1 has no probe_sink; must not raise


class TestFlowDoneCallback:
    def test_flow_finished_fans_out(self, fabric):
        done = []
        fabric.on_flow_done = done.append
        sentinel = object()
        fabric.flow_finished(sentinel)
        assert done == [sentinel]

    def test_no_callback_is_fine(self, fabric):
        fabric.on_flow_done = None
        fabric.flow_finished(object())
