"""Cross-scheme conformance: the executable contract every load
balancer in the factory registry must honour.

New schemes land against this spec instead of ad-hoc tests.  The
contract, parametrized over ``repro.lb.factory.LB_REGISTRY``:

* **registered** — the scheme appears in the EXPECTATIONS table below
  (so its claims are declared, not implied) and its class declares the
  same decision granularity;
* **deterministic replay** — the same config produces bit-identical
  per-flow records and event counts on every run;
* **serial == parallel** — running the scheme inside a worker process
  pool reproduces the in-process records bit for bit;
* **clean fabric** — under byte-conservation invariant checking, every
  flow finishes with zero timeouts and zero retransmissions: no scheme
  may lose or corrupt traffic on a healthy network;
* **bounded reordering** — a scheme's reroute count must match its
  declared granularity (flow-pinned schemes may not silently spray);
* **fault schedule sanity** — a link_down -> link_up cycle mid-run must
  not crash the scheme, must leave a complete applied/reverted timeline,
  must account for every flow, and must replay deterministically;
* **engine equivalence** — heap, wheel, and wheel:auto event engines
  produce bit-identical records.

A scheme registered in the factory but missing from EXPECTATIONS fails
``test_scheme_is_declared`` with instructions, which is the point: the
table is the spec, and growing the zoo means extending it consciously.
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import run_cells
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import bench_topology
from repro.faults.spec import link_down, link_up, schedule
from repro.lb.factory import LB_CLASSES, LB_REGISTRY, SPRAYING_SCHEMES

MS = 1_000_000
N_FLOWS = 25

#: The per-scheme declarations this suite enforces.  ``granularity`` is
#: the path-decision unit the scheme claims (checked against the agent
#: class); ``max_clean_reroutes`` bounds path changes of established
#: flows on a clean fabric — the "bounded reordering" claim.  Packet
#: sprayers declare ``None`` (reordering is their design), flow-pinned
#: schemes declare a small multiple of the flow count.
EXPECTATIONS = {
    "ecmp":       {"granularity": "flow",     "max_clean_reroutes": 0},
    "flowbender": {"granularity": "flow",     "max_clean_reroutes": 4 * N_FLOWS},
    "rdna":       {"granularity": "flow",     "max_clean_reroutes": 4 * N_FLOWS},
    "letflow":    {"granularity": "flowlet",  "max_clean_reroutes": 20 * N_FLOWS},
    "conga":      {"granularity": "flowlet",  "max_clean_reroutes": 20 * N_FLOWS},
    "clove-ecn":  {"granularity": "flowlet",  "max_clean_reroutes": 20 * N_FLOWS},
    "presto":     {"granularity": "flowcell", "max_clean_reroutes": None},
    "drb":        {"granularity": "packet",   "max_clean_reroutes": None},
    "drill":      {"granularity": "packet",   "max_clean_reroutes": None},
    "hermes":     {"granularity": "packet",   "max_clean_reroutes": 4 * N_FLOWS},
    "reps":       {"granularity": "packet",   "max_clean_reroutes": None},
    "diffflow":   {"granularity": "packet",   "max_clean_reroutes": None},
}

SCHEMES = sorted(LB_REGISTRY)
ENGINES = ("heap", "wheel", "wheel:auto")


def conformance_config(scheme, **overrides):
    """The shared conformance cell: small, deterministic, validated."""
    defaults = dict(
        topology=bench_topology(n_leaves=2, n_spines=2, hosts_per_leaf=2),
        lb=scheme,
        workload="web-search",
        load=0.4,
        n_flows=N_FLOWS,
        seed=1,
        size_scale=0.05,
        time_scale=0.05,
        reorder_mask_us=100.0 if scheme in SPRAYING_SCHEMES else None,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


FAULT_SCHEDULE = schedule(
    link_down(1 * MS, leaf=0, spine=0),
    link_up(3 * MS, leaf=0, spine=0),
)

#: Run cache: every contract below shares these results instead of
#: re-simulating, so the suite stays a per-scheme matrix, not a grid of
#: redundant runs.  Keyed (scheme, variant).
_RUNS = {}


def _run(scheme, variant="base", **overrides):
    key = (scheme, variant)
    if key not in _RUNS:
        _RUNS[key] = run_experiment(conformance_config(scheme, **overrides))
    return _RUNS[key]


def _same_results(a, b):
    return (
        a.stats.records == b.stats.records
        and a.events == b.events
        and a.sim_time_ns == b.sim_time_ns
    )


@pytest.fixture(scope="module")
def parallel_results():
    """One process-pool batch over every scheme (amortizes pool spawn)."""
    grid = [conformance_config(scheme) for scheme in SCHEMES]
    results = run_cells(grid, jobs=2, use_cache=False)
    return dict(zip(SCHEMES, results))


@pytest.mark.parametrize("scheme", SCHEMES)
class TestSchemeConformance:
    def test_scheme_is_declared(self, scheme):
        assert scheme in EXPECTATIONS, (
            f"scheme {scheme!r} is registered in LB_REGISTRY but not "
            f"declared in tests/test_scheme_conformance.py::EXPECTATIONS "
            f"— add a row stating its granularity and reordering claim"
        )
        declared = EXPECTATIONS[scheme]["granularity"]
        if scheme in LB_CLASSES:  # hermes builds its class lazily
            actual = getattr(LB_CLASSES[scheme], "granularity", None)
            assert actual == declared, (
                f"{scheme}: EXPECTATIONS says granularity={declared!r} "
                f"but the agent class declares {actual!r}"
            )

    def test_deterministic_replay(self, scheme):
        base = _run(scheme)
        replay = run_experiment(conformance_config(scheme))
        assert _same_results(base, replay), (
            f"{scheme}: two runs of the same config diverged — the "
            f"scheme draws randomness outside its seeded rng stream"
        )

    def test_serial_matches_parallel(self, scheme, parallel_results):
        assert _same_results(_run(scheme), parallel_results[scheme]), (
            f"{scheme}: worker-process run diverged from in-process run"
        )

    def test_clean_fabric_loses_nothing(self, scheme):
        result = _run(scheme, "validated", validate=True)
        stats = result.stats
        assert stats.finished_count == stats.count == N_FLOWS
        timeouts = sum(r.timeouts for r in stats.records)
        retx = sum(r.retransmissions for r in stats.records)
        assert timeouts == 0, f"{scheme}: timeouts on a clean fabric"
        assert retx == 0, f"{scheme}: lost packets on a clean fabric"

    def test_reordering_stays_bounded(self, scheme):
        bound = EXPECTATIONS[scheme]["max_clean_reroutes"]
        if bound is None:
            return  # sprays by design; reordering is the mechanism
        reroutes = _run(scheme).total_reroutes
        assert reroutes <= bound, (
            f"{scheme} claims {EXPECTATIONS[scheme]['granularity']!r} "
            f"granularity but rerouted {reroutes} times (> {bound}) on "
            f"a clean fabric"
        )

    def test_fault_schedule_sanity(self, scheme):
        result = _run(scheme, "faulted", faults=FAULT_SCHEDULE)
        assert [r["phase"] for r in result.fault_timeline] == [
            "applied", "reverted"
        ]
        stats = result.stats
        assert stats.count == N_FLOWS, (
            f"{scheme}: flows went missing under a fault schedule"
        )
        # The link comes back: nothing may stay stranded forever.
        assert stats.finished_count == N_FLOWS, (
            f"{scheme}: {stats.unfinished_count} flows never finished "
            f"although the link recovered mid-run"
        )
        replay = run_experiment(
            conformance_config(scheme, faults=FAULT_SCHEDULE)
        )
        assert _same_results(result, replay), (
            f"{scheme}: faulted run is not deterministic"
        )

    @pytest.mark.parametrize("engine", [e for e in ENGINES if e != "wheel"])
    def test_engine_equivalence(self, scheme, engine):
        # "wheel" is the base run (the default engine) — compare the
        # other engines against it.
        base = _run(scheme)
        other = _run(scheme, f"engine:{engine}", scheduler=engine)
        assert _same_results(base, other), (
            f"{scheme}: {engine} engine diverged from wheel engine"
        )


def test_expectations_match_registry():
    """The spec table and the factory registry stay in lockstep both
    ways: no undeclared schemes, no stale declarations."""
    assert set(EXPECTATIONS) == set(LB_REGISTRY)


def test_factory_error_lists_schemes_alphabetically():
    from repro.lb.factory import install_lb
    from tests.conftest import make_fabric

    with pytest.raises(ValueError) as err:
        install_lb(make_fabric(), "no-such-scheme")
    message = str(err.value)
    listed = message.split("known: ", 1)[1].split(", ")
    assert listed == sorted(LB_REGISTRY)
