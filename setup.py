"""Legacy setup shim.

The environment has no ``wheel`` package and no network access, so PEP
517 editable installs fail; ``pip install -e . --no-build-isolation
--no-use-pep517`` uses this shim instead.
"""

from setuptools import setup

setup()
